"""Unit tests for the iterative (hill-climbing) phase."""

import numpy as np
import pytest

from repro.core import run_iterative_phase
from repro.core.iterative import find_bad_medoids, replace_bad_medoids
from repro.data import generate
from repro.exceptions import ConvergenceWarning, ParameterError
from repro.rng import ensure_rng
from repro.robustness import Deadline


class TestFindBadMedoids:
    def test_smallest_cluster_always_bad(self):
        labels = np.array([0] * 50 + [1] * 49 + [2] * 48)
        bad = find_bad_medoids(labels, k=3, min_deviation=0.1)
        assert 2 in bad

    def test_below_threshold_bad(self):
        # N = 100, k = 4 -> threshold = 100/4 * 0.1 = 2.5
        labels = np.array([0] * 50 + [1] * 46 + [2] * 2 + [3] * 2)
        bad = find_bad_medoids(labels, k=4, min_deviation=0.1)
        assert set(bad) >= {2, 3}

    def test_balanced_clusters_one_bad(self):
        labels = np.repeat([0, 1, 2, 3], 25)
        bad = find_bad_medoids(labels, k=4, min_deviation=0.1)
        assert len(bad) == 1  # only the (tied) smallest

    def test_empty_cluster_bad(self):
        labels = np.array([0] * 50 + [1] * 50)
        bad = find_bad_medoids(labels, k=3, min_deviation=0.1)
        assert 2 in bad


class TestReplaceBadMedoids:
    def test_replaces_only_bad_positions(self):
        rng = ensure_rng(0)
        current = np.array([10, 20, 30])
        pool = np.arange(100)
        new = replace_bad_medoids(current, [1], pool, rng)
        assert new[0] == 10
        assert new[2] == 30
        assert new[1] != 20

    def test_no_duplicates(self):
        rng = ensure_rng(1)
        current = np.array([0, 1, 2, 3])
        pool = np.arange(10)
        for _ in range(20):
            new = replace_bad_medoids(current, [0, 2], pool, rng)
            assert len(set(new.tolist())) == 4

    def test_pool_exhausted_keeps_old(self):
        rng = ensure_rng(2)
        current = np.array([0, 1])
        pool = np.array([0, 1])  # nothing new available
        new = replace_bad_medoids(current, [0], pool, rng)
        assert np.array_equal(new, current)


class TestRunIterativePhase:
    @pytest.fixture
    def dataset(self):
        return generate(800, 10, 3, cluster_dim_counts=[4, 4, 4],
                        outlier_fraction=0.02, seed=31)

    def test_output_shapes(self, dataset):
        pool = np.arange(0, 800, 40)  # 20 candidates
        out = run_iterative_phase(dataset.points, pool, k=3, l=4, seed=5)
        assert out.medoid_indices.shape == (3,)
        assert len(out.dim_sets) == 3
        assert out.labels.shape == (800,)
        assert np.isfinite(out.objective)

    def test_objective_monotone_in_history(self, dataset):
        pool = np.arange(0, 800, 40)
        out = run_iterative_phase(dataset.points, pool, k=3, l=4, seed=5)
        best = np.inf
        for rec in out.history:
            if rec.improved:
                assert rec.objective < best
                best = rec.objective

    def test_first_iteration_always_improves(self, dataset):
        pool = np.arange(0, 800, 40)
        out = run_iterative_phase(dataset.points, pool, k=3, l=4, seed=5)
        assert out.history[0].improved
        assert out.n_improvements >= 1

    def test_termination_reason_set(self, dataset):
        pool = np.arange(0, 800, 40)
        out = run_iterative_phase(dataset.points, pool, k=3, l=4,
                                  max_bad_tries=3, seed=5)
        assert out.terminated_by in {"no_improvement", "pool_exhausted",
                                     "max_iterations"}

    def test_max_iterations_cap(self, dataset):
        pool = np.arange(0, 800, 40)
        with pytest.warns(ConvergenceWarning, match="max_iterations=2"):
            out = run_iterative_phase(dataset.points, pool, k=3, l=4,
                                      max_iterations=2, max_bad_tries=50,
                                      seed=5)
        assert out.n_iterations <= 2
        assert out.terminated_by == "max_iterations"

    def test_no_warning_on_clean_convergence(self, dataset, recwarn):
        pool = np.arange(0, 800, 40)
        out = run_iterative_phase(dataset.points, pool, k=3, l=4, seed=5)
        assert out.terminated_by != "max_iterations"
        assert not [w for w in recwarn.list
                    if issubclass(w.category, ConvergenceWarning)]

    def test_deadline_returns_best_so_far(self, dataset):
        pool = np.arange(0, 800, 40)
        out = run_iterative_phase(
            dataset.points, pool, k=3, l=4, seed=5,
            max_bad_tries=10**6, max_iterations=10**6,
            deadline=Deadline.start(0.0),
        )
        assert out.terminated_by == "deadline"
        # the first iteration always completes, so the result is usable
        assert out.n_iterations >= 1
        assert len(out.dim_sets) == 3
        assert out.labels.shape == (800,)
        assert np.isfinite(out.objective)

    def test_unlimited_deadline_harmless(self, dataset):
        pool = np.arange(0, 800, 40)
        a = run_iterative_phase(dataset.points, pool, k=3, l=4, seed=9)
        b = run_iterative_phase(dataset.points, pool, k=3, l=4, seed=9,
                                deadline=Deadline.start(None))
        assert np.array_equal(a.medoid_indices, b.medoid_indices)
        assert a.objective == b.objective

    def test_dimension_budget_respected(self, dataset):
        pool = np.arange(0, 800, 40)
        out = run_iterative_phase(dataset.points, pool, k=3, l=4, seed=5)
        assert sum(len(d) for d in out.dim_sets) == 12
        assert all(len(d) >= 2 for d in out.dim_sets)

    def test_pool_too_small_rejected(self, dataset):
        with pytest.raises(ParameterError, match="pool has"):
            run_iterative_phase(dataset.points, np.array([1, 2]), k=3, l=4)

    def test_keep_history_false(self, dataset):
        pool = np.arange(0, 800, 40)
        out = run_iterative_phase(dataset.points, pool, k=3, l=4,
                                  keep_history=False, seed=5)
        assert out.history == []

    def test_deterministic(self, dataset):
        pool = np.arange(0, 800, 40)
        a = run_iterative_phase(dataset.points, pool, k=3, l=4, seed=9)
        b = run_iterative_phase(dataset.points, pool, k=3, l=4, seed=9)
        assert np.array_equal(a.medoid_indices, b.medoid_indices)
        assert a.objective == b.objective

    def test_history_bad_positions_belong_to_visited_vertex(self, dataset):
        # regression: non-improving records used to carry the *best*
        # vertex's stale bad positions instead of the visited vertex's
        # own.  Re-derive each record's clustering and check.
        from repro.core import assign_points, compute_localities, find_dimensions

        pool = np.arange(0, 800, 40)
        out = run_iterative_phase(dataset.points, pool, k=3, l=4, seed=5)
        non_improving = [rec for rec in out.history if not rec.improved]
        assert non_improving  # seed 5 visits rejected vertices
        for rec in out.history:
            current = np.asarray(rec.medoid_indices, dtype=np.intp)
            localities, _ = compute_localities(
                dataset.points, current, min_locality_size=2)
            dims = find_dimensions(dataset.points, current, 4,
                                   localities=localities)
            labels = assign_points(dataset.points, dataset.points[current],
                                   dims)
            expected = find_bad_medoids(labels, k=3, min_deviation=0.1)
            assert list(rec.bad_positions) == expected
