"""Unit tests for the PROCLUS initialization phase."""

import numpy as np
import pytest

from repro.core import initialize_medoid_pool
from repro.data import generate
from repro.exceptions import ParameterError


class TestInitializeMedoidPool:
    def test_returns_requested_pool_size(self):
        ds = generate(500, 10, 3, seed=1)
        pool = initialize_medoid_pool(ds.points, 90, 15, seed=2)
        assert pool.shape == (15,)
        assert len(set(pool.tolist())) == 15

    def test_indices_within_range(self):
        ds = generate(300, 8, 3, seed=1)
        pool = initialize_medoid_pool(ds.points, 90, 15, seed=2)
        assert pool.min() >= 0
        assert pool.max() < 300

    def test_sample_clamped_to_n(self):
        ds = generate(40, 5, 2, seed=1)
        pool = initialize_medoid_pool(ds.points, 1000, 10, seed=2)
        assert pool.shape == (10,)

    def test_pool_gt_sample_rejected(self):
        ds = generate(100, 5, 2, seed=1)
        with pytest.raises(ParameterError, match="<= sample_size"):
            initialize_medoid_pool(ds.points, 10, 20)

    def test_pool_gt_n_rejected(self):
        ds = generate(10, 5, 2, seed=1)
        with pytest.raises(ParameterError, match="exceeds the number"):
            initialize_medoid_pool(ds.points, 100, 20)

    def test_deterministic(self):
        ds = generate(400, 10, 3, seed=1)
        a = initialize_medoid_pool(ds.points, 90, 15, seed=7)
        b = initialize_medoid_pool(ds.points, 90, 15, seed=7)
        assert np.array_equal(a, b)

    def test_pool_is_piercing_on_easy_data(self):
        """On well-separated data the pool should hit every cluster."""
        ds = generate(1000, 10, 4, cluster_dim_counts=[8] * 4,
                      outlier_fraction=0.02, seed=3)
        pool = initialize_medoid_pool(ds.points, 30 * 4, 5 * 4, seed=5)
        hit = set(int(l) for l in ds.labels[pool] if l >= 0)
        assert hit == {0, 1, 2, 3}

    def test_outliers_diluted_by_sampling(self):
        """The pool should not be dominated by outliers."""
        ds = generate(2000, 10, 3, outlier_fraction=0.05, seed=6)
        pool = initialize_medoid_pool(ds.points, 90, 15, seed=8)
        n_outliers = int(np.sum(ds.labels[pool] == -1))
        assert n_outliers <= 7  # far fewer than a pure-greedy pick would take
