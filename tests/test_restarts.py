"""Tests for multi-restart PROCLUS (the paper's section-4.3 workflow)."""

import numpy as np
import pytest

from repro import Proclus, proclus
from repro.data import generate
from repro.exceptions import ParameterError


@pytest.fixture(scope="module")
def workload():
    return generate(1000, 12, 3, cluster_dim_counts=[4, 4, 4],
                    outlier_fraction=0.03, seed=61)


FAST = dict(max_bad_tries=5, keep_history=False)


class TestRestarts:
    def test_restarts_never_worse_than_each_single_run(self, workload):
        """The multi-restart result's iterative objective equals the
        minimum over the individual child runs."""
        from repro.rng import ensure_rng, spawn
        rng = ensure_rng(99)
        children = spawn(rng, 3)
        singles = [
            proclus(workload.points, 3, 4, seed=c, restarts=1, **FAST)
            for c in children
        ]
        multi = proclus(workload.points, 3, 4, seed=99, restarts=3, **FAST)
        assert multi.iterative_objective == pytest.approx(
            min(s.iterative_objective for s in singles)
        )

    def test_restart_one_is_default_path(self, workload):
        a = proclus(workload.points, 3, 4, seed=5, restarts=1, **FAST)
        b = proclus(workload.points, 3, 4, seed=5, **FAST)
        assert np.array_equal(a.labels, b.labels)

    def test_invalid_restarts(self, workload):
        with pytest.raises(ParameterError, match="restarts"):
            proclus(workload.points, 3, 4, restarts=0)

    def test_estimator_passes_restarts(self, workload):
        est = Proclus(k=3, l=4, seed=7, restarts=2, **FAST).fit(workload.points)
        assert est.result_.labels.shape == (1000,)

    def test_iterative_objective_recorded(self, workload):
        result = proclus(workload.points, 3, 4, seed=5, **FAST)
        assert np.isfinite(result.iterative_objective)
        assert result.iterative_objective > 0

    def test_deterministic(self, workload):
        a = proclus(workload.points, 3, 4, seed=11, restarts=3, **FAST)
        b = proclus(workload.points, 3, 4, seed=11, restarts=3, **FAST)
        assert np.array_equal(a.labels, b.labels)

    def test_restarts_forward_fit_sample_size(self, workload):
        """Regression: the restart recursion used to silently drop
        fit_sample_size, so every child ran on the full data.  Each
        child must run in large-database mode (its phase timings carry
        the sample_fit key) and match the best child run directly."""
        from repro.rng import ensure_rng, spawn
        multi = proclus(workload.points, 3, 4, seed=21, restarts=3,
                        fit_sample_size=300, **FAST)
        assert "sample_fit" in multi.phase_seconds
        children = spawn(ensure_rng(21), 3)
        singles = [
            proclus(workload.points, 3, 4, seed=c, restarts=1,
                    fit_sample_size=300, **FAST)
            for c in children
        ]
        best = min(singles, key=lambda s: s.iterative_objective)
        assert multi.iterative_objective == pytest.approx(
            best.iterative_objective)
        assert np.array_equal(multi.labels, best.labels)
