"""Unit tests for the Dataset container."""

import numpy as np
import pytest

from repro.data import Dataset, OUTLIER_LABEL
from repro.exceptions import DataError


def make_dataset():
    points = np.arange(20, dtype=float).reshape(10, 2)
    labels = np.array([0, 0, 0, 1, 1, 1, 1, -1, -1, 0])
    dims = {0: (0,), 1: (1, 0)}
    return Dataset(points=points, labels=labels, cluster_dimensions=dims)


class TestConstruction:
    def test_shape_properties(self):
        ds = make_dataset()
        assert ds.n_points == 10
        assert ds.n_dims == 2

    def test_labels_length_mismatch(self):
        with pytest.raises(DataError, match="one entry per point"):
            Dataset(points=np.zeros((3, 2)), labels=np.array([0, 1]))

    def test_dimension_indices_validated(self):
        with pytest.raises(DataError, match="out of"):
            Dataset(points=np.zeros((3, 2)), cluster_dimensions={0: (5,)})

    def test_dims_sorted_and_deduped(self):
        ds = make_dataset()
        assert ds.cluster_dimensions[1] == (0, 1)

    def test_no_ground_truth(self):
        ds = Dataset(points=np.zeros((3, 2)))
        assert not ds.has_ground_truth
        assert ds.cluster_ids == ()
        assert ds.n_outliers == 0


class TestGroundTruthAccessors:
    def test_cluster_ids_exclude_outliers(self):
        ds = make_dataset()
        assert ds.cluster_ids == (0, 1)
        assert ds.n_clusters == 2

    def test_n_outliers(self):
        assert make_dataset().n_outliers == 2

    def test_cluster_sizes(self):
        assert make_dataset().cluster_sizes() == {0: 4, 1: 4}

    def test_cluster_points(self):
        ds = make_dataset()
        pts = ds.cluster_points(1)
        assert pts.shape == (4, 2)

    def test_cluster_points_without_labels(self):
        ds = Dataset(points=np.zeros((3, 2)))
        with pytest.raises(DataError, match="no ground-truth"):
            ds.cluster_points(0)

    def test_iter_clusters(self):
        ids = [cid for cid, _ in make_dataset().iter_clusters()]
        assert ids == [0, 1]


class TestDerived:
    def test_subset(self):
        ds = make_dataset()
        sub = ds.subset(np.array([0, 3, 7]))
        assert sub.n_points == 3
        assert sub.labels.tolist() == [0, 1, -1]

    def test_without_ground_truth(self):
        blind = make_dataset().without_ground_truth()
        assert blind.labels is None
        assert blind.cluster_dimensions is None
        assert blind.n_points == 10

    def test_outlier_label_constant(self):
        assert OUTLIER_LABEL == -1
