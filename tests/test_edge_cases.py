"""Edge-case battery across modules: degenerate inputs, boundary
parameters, and pathological data that a production library must survive.
"""

import numpy as np
import pytest

from repro import Proclus, proclus
from repro.baselines import Clique
from repro.baselines.clique import Grid, Unit
from repro.core import (
    allocate_dimensions,
    evaluate_clusters,
    greedy_select,
)
from repro.core.iterative import find_bad_medoids
from repro.data import Dataset, generate
from repro.distance import segmental_distance
from repro.exceptions import DataError, ParameterError
from repro.extensions import orclus


class TestDegenerateData:
    def test_all_identical_points(self):
        """Zero-variance data: every locality is degenerate, every
        Z-row zero; the algorithm must not crash or divide by zero."""
        X = np.full((100, 5), 42.0)
        result = proclus(X, 2, 2, seed=1, sample_factor=10, pool_factor=2,
                         max_bad_tries=2, keep_history=False)
        assert result.labels.shape == (100,)
        assert np.isfinite(result.objective)

    def test_single_tight_cluster_k2(self):
        """Asking for 2 clusters in unimodal data still terminates."""
        rng = np.random.default_rng(0)
        X = rng.normal(50, 0.1, size=(200, 4))
        result = proclus(X, 2, 2, seed=1, max_bad_tries=3,
                         keep_history=False)
        assert set(np.unique(result.labels)) <= {-1, 0, 1}

    def test_two_points_two_clusters(self):
        X = np.array([[0.0, 0.0, 0.0], [100.0, 100.0, 100.0]])
        result = proclus(X, 2, 2, seed=1, sample_factor=1, pool_factor=1,
                         max_bad_tries=1, keep_history=False)
        assert len(set(result.labels.tolist()) - {-1}) >= 1

    def test_one_dimension_rejected(self):
        """l >= 2 makes d = 1 unusable; the error must be clear."""
        X = np.random.default_rng(0).normal(size=(50, 1))
        with pytest.raises(ParameterError):
            proclus(X, 2, 2)

    def test_constant_dimension_in_data(self):
        """A constant column has zero spread everywhere — it will look
        'tight' to every cluster, which is acceptable, but nothing may
        crash and the budget must hold."""
        rng = np.random.default_rng(1)
        X = rng.uniform(0, 100, size=(300, 6))
        X[:, 3] = 7.0
        result = proclus(X, 2, 3, seed=1, max_bad_tries=3,
                         keep_history=False)
        assert sum(len(d) for d in result.dimensions.values()) == 6

    def test_extreme_coordinates(self):
        rng = np.random.default_rng(2)
        X = rng.uniform(0, 1, size=(200, 4)) * 1e12
        result = proclus(X, 2, 2, seed=2, max_bad_tries=3,
                         keep_history=False)
        assert np.isfinite(result.objective)


class TestBoundaryParameters:
    def test_l_equals_d(self):
        """l = d means every cluster gets every dimension."""
        ds = generate(400, 4, 2, cluster_dim_counts=[2, 2], seed=3)
        result = proclus(ds.points, 2, 4, seed=3, max_bad_tries=3,
                         keep_history=False)
        assert all(len(d) == 4 for d in result.dimensions.values())

    def test_k_equals_one_requires_two_medoids_for_locality(self):
        """k = 1 has no 'nearest other medoid'; the library rejects it
        cleanly rather than returning garbage."""
        ds = generate(200, 5, 1, cluster_dim_counts=[3], seed=4)
        with pytest.raises((ParameterError, ValueError)):
            proclus(ds.points, 1, 3, seed=4)

    def test_min_deviation_extremes(self):
        ds = generate(300, 6, 2, cluster_dim_counts=[3, 3], seed=5)
        for md in (1e-9, 0.999):
            result = proclus(ds.points, 2, 3, seed=5, min_deviation=md,
                             max_bad_tries=2, keep_history=False)
            assert result.labels.shape == (300,)

    def test_pool_exactly_k(self):
        """B*k == k: no replacement candidates — terminates immediately."""
        ds = generate(200, 5, 2, cluster_dim_counts=[2, 2], seed=6)
        result = proclus(ds.points, 2, 2, seed=6, sample_factor=1,
                         pool_factor=1, max_bad_tries=50,
                         keep_history=False)
        assert result.terminated_by in {"pool_exhausted", "no_improvement",
                                        "max_iterations"}


class TestAllocatorEdges:
    def test_all_z_equal_ties_resolved_deterministically(self):
        z = np.zeros((3, 4))
        a = allocate_dimensions(z, total=8, min_per_row=2)
        b = allocate_dimensions(z, total=8, min_per_row=2)
        assert a == b

    def test_total_equals_capacity(self):
        z = np.random.default_rng(0).normal(size=(2, 3))
        sets = allocate_dimensions(z, total=6, min_per_row=2)
        assert all(len(s) == 3 for s in sets)

    def test_min_per_row_one(self):
        z = np.array([[-5.0, 1.0], [-1.0, -2.0]])
        sets = allocate_dimensions(z, total=3, min_per_row=1)
        assert sum(len(s) for s in sets) == 3
        assert all(len(s) >= 1 for s in sets)


class TestBadMedoidEdges:
    def test_all_points_in_one_cluster(self):
        labels = np.zeros(100, dtype=int)
        bad = find_bad_medoids(labels, k=3, min_deviation=0.1)
        assert set(bad) >= {1, 2}

    def test_single_cluster_k1(self):
        labels = np.zeros(10, dtype=int)
        assert find_bad_medoids(labels, k=1, min_deviation=0.1) == [0]


class TestGreedyEdges:
    def test_single_point(self):
        idx = greedy_select(np.array([[1.0, 2.0]]), 1)
        assert idx.tolist() == [0]

    def test_duplicate_points_all_selectable(self):
        X = np.zeros((5, 2))
        idx = greedy_select(X, 5, seed=0)
        assert sorted(idx.tolist()) == [0, 1, 2, 3, 4]


class TestCliqueEdges:
    def test_xi_one_single_cell(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(0, 100, size=(100, 3))
        c = Clique(xi=1, tau=0.5).fit(X)
        # everything lives in the one cell of every subspace
        assert c.result.coverage_fraction == 1.0
        assert c.result.average_overlap >= 1.0

    def test_target_dim_without_units_gives_empty(self):
        rng = np.random.default_rng(1)
        X = rng.uniform(0, 100, size=(100, 3))
        c = Clique(xi=10, tau=0.9, target_dimensionality=3).fit(X)
        assert c.result.n_clusters == 0
        assert c.result.coverage_fraction == 0.0

    def test_single_point_dataset(self):
        c = Clique(xi=10, tau=0.5).fit(np.array([[1.0, 2.0]]))
        assert c.result.n_dense_units >= 1

    def test_unit_with_xi_one_has_no_neighbours(self):
        u = Unit(dims=(0, 1), intervals=(0, 0))
        assert list(u.neighbours(xi=1)) == []

    def test_grid_single_point_bounds(self):
        g = Grid(xi=10).fit(np.array([[5.0, 5.0]]))
        cells = g.cell_indices(np.array([[5.0, 5.0]]))
        assert cells.tolist() == [[0, 0]]


class TestOrclusEdges:
    def test_seed_factor_capped_by_n(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(20, 4))
        result = orclus(X, 2, 2, seed_factor=100, seed=0)
        assert result.k == 2

    def test_k_equals_n_minus_edge(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(10, 4))
        result = orclus(X, 3, 2, seed=1)
        assert result.labels.shape == (10,)


class TestEvaluateEdges:
    def test_all_outliers_objective_zero(self):
        X = np.random.default_rng(0).normal(size=(10, 3))
        labels = np.full(10, -1)
        assert evaluate_clusters(X, labels, [(0, 1)]) == 0.0

    def test_segmental_distance_identical_points(self):
        assert segmental_distance([1, 2, 3], [1, 2, 3], [0, 2]) == 0.0


class TestRobustnessEdges:
    @pytest.mark.filterwarnings("ignore::repro.exceptions.SanitizationWarning")
    def test_n_equals_k(self):
        """k == N: infeasible as asked (the pool needs B*k <= N points);
        raises plainly, degrades gracefully when allowed."""
        rng = np.random.default_rng(7)
        X = rng.uniform(0, 100, size=(12, 5))
        with pytest.raises(ParameterError):
            proclus(X, 12, 2, seed=0)
        result = proclus(X, 12, 2, seed=0, auto_degrade=True)
        assert result.degraded
        assert result.k < 12
        assert result.labels.shape == (12,)

    @pytest.mark.filterwarnings("ignore::repro.exceptions.SanitizationWarning")
    def test_all_duplicates_dataset(self):
        """Every row identical: one distinct point — only the k-medoids
        rung of the ladder can serve this."""
        X = np.tile([3.0, 1.0, 4.0, 1.0], (50, 1))
        result = proclus(X, 3, 2, seed=0, auto_degrade=True,
                         collapse_duplicates=True)
        assert result.degraded
        assert result.labels.shape == (50,)
        assert set(np.unique(result.labels)) <= {-1, 0}

    @pytest.mark.filterwarnings("ignore::repro.exceptions.SanitizationWarning")
    def test_single_varying_column(self):
        """All but one dimension constant; the constant dims cannot all
        be excluded (the >=2-dims floor) but nothing may crash."""
        rng = np.random.default_rng(8)
        X = np.full((200, 6), 5.0)
        X[:, 2] = rng.uniform(0, 100, size=200)
        result = proclus(X, 2, 2, seed=1, max_bad_tries=3,
                         keep_history=False, auto_degrade=True)
        assert result.labels.shape == (200,)
        assert np.isfinite(result.objective)

    def test_predict_far_outside_training_range(self):
        """predict() on points far beyond the training envelope must
        return valid cluster ids (no outlier logic, no overflow)."""
        ds = generate(400, 8, 2, cluster_dim_counts=[3, 3], seed=9)
        est = Proclus(k=2, l=3, seed=9, max_bad_tries=3,
                      keep_history=False).fit(ds.points)
        far = np.array([[1e9] * 8, [-1e9] * 8, [1e12] * 8])
        labels = est.predict(far)
        assert labels.shape == (3,)
        assert set(labels.tolist()) <= {0, 1}


class TestDatasetEdges:
    def test_single_point_dataset(self):
        ds = Dataset(points=np.array([[1.0, 2.0]]))
        assert ds.n_points == 1

    def test_generator_single_cluster(self):
        ds = generate(100, 5, 1, cluster_dim_counts=[3], seed=1)
        assert ds.n_clusters == 1
        assert len(ds.cluster_dimensions[0]) == 3

    def test_generator_many_clusters_few_points(self):
        ds = generate(60, 5, 10, outlier_fraction=0.0, seed=2)
        assert sum(ds.cluster_sizes().values()) == 60
        assert all(s >= 1 for s in ds.cluster_sizes().values())
