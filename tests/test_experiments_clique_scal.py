"""Small-scale tests of the CLIQUE-quality and scalability experiments."""

import pytest

from repro.data import generate
from repro.experiments import (
    run_clique_quality,
    run_scalability_cluster_dim,
    run_scalability_points,
    run_table5_snapshot,
)


@pytest.fixture(scope="module")
def tiny_case():
    """A tiny Case-1-like workload to keep the CLIQUE passes fast."""
    return generate(600, 8, 3, cluster_dim_counts=[4, 4, 4],
                    outlier_fraction=0.05, seed=70)


class TestCliqueQuality:
    def test_sweep_rows(self, tiny_case):
        report = run_clique_quality(
            tau_percents=(3.0, 5.0), max_dimensionality=4,
            dataset=tiny_case,
        )
        assert len(report.rows) == 2
        row = report.row_for(3.0)
        assert row["n_clusters"] >= 1
        assert row["overlap"] >= 1.0
        assert 0.0 <= row["cluster_points_pct"] <= 100.0

    def test_lower_tau_recovers_no_fewer_points(self, tiny_case):
        """Lower threshold => dense units are a superset, so recovered
        cluster-point percentage cannot drop at the same reported dim."""
        report = run_clique_quality(
            tau_percents=(2.0, 6.0), max_dimensionality=2,
            dataset=tiny_case,
        )
        low = report.row_for(2.0)
        high = report.row_for(6.0)
        if low["max_dim"] == high["max_dim"]:
            assert low["cluster_points_pct"] >= high["cluster_points_pct"] - 1e-9

    def test_unknown_row(self, tiny_case):
        report = run_clique_quality(tau_percents=(3.0,),
                                    max_dimensionality=2, dataset=tiny_case)
        with pytest.raises(KeyError):
            report.row_for(9.9)

    def test_text_rendering(self, tiny_case):
        report = run_clique_quality(tau_percents=(3.0,),
                                    max_dimensionality=2, dataset=tiny_case)
        assert "CLIQUE quality sweep" in report.to_text()


class TestTable5Snapshot:
    def test_snapshot_fields(self, tiny_case):
        snap = run_table5_snapshot(
            tau_percent=2.0, target_dim=4, dataset=tiny_case, max_rows=5,
        )
        assert snap.n_clusters >= 1
        assert snap.overlap >= 1.0
        assert len(snap.snapshot_rows) <= 5
        assert "restricted to 4 dimensions" in snap.to_text()

    def test_rows_sorted_by_size(self, tiny_case):
        snap = run_table5_snapshot(
            tau_percent=2.0, target_dim=4, dataset=tiny_case,
        )
        sizes = [pts for _, _, pts in snap.snapshot_rows]
        assert sizes == sorted(sizes, reverse=True)


class TestScalabilityRunners:
    def test_points_sweep_without_clique(self):
        report = run_scalability_points(sizes=(300, 600),
                                        include_clique=False,
                                        cluster_dim=3, n_dims=8)
        assert list(report.series) == ["PROCLUS"]
        assert len(report.series["PROCLUS"]) == 2

    def test_cluster_dim_sweep_without_clique(self):
        report = run_scalability_cluster_dim(dims=(2, 3), n_points=300,
                                             include_clique=False,
                                             n_dims=8, proclus_repeats=1)
        assert report.x_values == [2.0, 3.0]

    def test_chart_in_text(self):
        report = run_scalability_points(sizes=(300, 600),
                                        include_clique=False,
                                        cluster_dim=3, n_dims=8)
        text = report.to_text()
        assert "|" in text          # the ASCII chart canvas
        assert "PROCLUS" in text
