"""Unit tests for cluster matching (Hungarian + greedy)."""

import numpy as np
import pytest

from repro.metrics import confusion_matrix, greedy_match, hungarian_match, match_clusters


class TestGreedyMatch:
    def test_diagonal_dominant(self):
        m = np.array([[10, 1], [2, 20]])
        assert greedy_match(m) == {1: 1, 0: 0}

    def test_zero_rows_unmatched(self):
        m = np.array([[5, 0], [0, 0]])
        assert greedy_match(m) == {0: 0}

    def test_rectangular(self):
        m = np.array([[10, 1, 1], [1, 9, 1]])
        assert greedy_match(m) == {0: 0, 1: 1}


class TestHungarianMatch:
    def test_agrees_with_greedy_on_diagonal(self):
        m = np.array([[10, 1], [2, 20]])
        assert hungarian_match(m) == greedy_match(m)

    def test_beats_greedy_when_greedy_is_suboptimal(self):
        # greedy takes (0,0)=10 then is forced to (1,1)=1 -> total 11;
        # optimal is (0,1)=9 + (1,0)=9 -> total 18
        m = np.array([[10, 9], [9, 1]])
        h = hungarian_match(m)
        total_h = sum(m[r, c] for r, c in h.items())
        g = greedy_match(m)
        total_g = sum(m[r, c] for r, c in g.items())
        assert total_h >= total_g
        assert h == {0: 1, 1: 0}

    def test_zero_pairs_never_matched(self):
        m = np.array([[5, 0], [0, 0]])
        assert hungarian_match(m) == {0: 0}


class TestMatchClusters:
    def test_maps_cluster_ids_not_positions(self):
        # output ids {0, 1}; input cluster ids {3, 7}
        found = np.array([0, 0, 1, 1])
        true = np.array([3, 3, 7, 7])
        cm = confusion_matrix(found, true)
        assert match_clusters(cm) == {0: 3, 1: 7}

    def test_outlier_buckets_excluded(self):
        found = np.array([0, -1, -1])
        true = np.array([2, -1, -1])
        cm = confusion_matrix(found, true)
        mapping = match_clusters(cm)
        assert mapping == {0: 2}

    def test_greedy_method_selectable(self):
        found = np.array([0, 0, 1])
        true = np.array([0, 0, 1])
        cm = confusion_matrix(found, true)
        assert match_clusters(cm, method="greedy") == {0: 0, 1: 1}

    def test_invalid_method(self):
        found = np.array([0])
        true = np.array([0])
        cm = confusion_matrix(found, true)
        with pytest.raises(ValueError):
            match_clusters(cm, method="magic")

    def test_pure_outlier_output_cluster_unmatched(self):
        found = np.array([0, 0, 1, 1])
        true = np.array([0, 0, -1, -1])
        cm = confusion_matrix(found, true)
        mapping = match_clusters(cm)
        assert 1 not in mapping
