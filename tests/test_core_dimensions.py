"""Unit tests for locality analysis and dimension selection (FindDimensions)."""

import numpy as np
import pytest

from repro.core import (
    allocate_dimensions,
    compute_localities,
    dimension_statistics,
    find_dimensions,
    find_dimensions_from_clusters,
)
from repro.core.dimensions import zscores
from repro.exceptions import ParameterError


class TestComputeLocalities:
    def test_radius_is_nearest_medoid_distance(self):
        X = np.array([[0.0, 0.0], [10.0, 0.0], [1.0, 0.0], [8.0, 0.0],
                      [100.0, 100.0]])
        localities, deltas = compute_localities(X, np.array([0, 1]))
        assert deltas[0] == pytest.approx(10.0)
        assert deltas[1] == pytest.approx(10.0)

    def test_membership(self):
        X = np.array([[0.0, 0.0], [10.0, 0.0], [1.0, 0.0], [8.0, 0.0],
                      [100.0, 100.0]])
        localities, _ = compute_localities(X, np.array([0, 1]))
        # locality of medoid 0: points within distance 10 (excluding itself)
        assert set(localities[0].tolist()) == {1, 2, 3}
        assert 4 not in localities[0]

    def test_medoid_excluded_from_own_locality(self):
        X = np.random.default_rng(0).normal(size=(30, 3))
        localities, _ = compute_localities(X, np.array([3, 17]))
        assert 3 not in localities[0]
        assert 17 not in localities[1]

    def test_fallback_for_crowded_medoids(self):
        """Coincident medoids get a nearest-neighbour fallback locality."""
        X = np.vstack([np.zeros((2, 3)), np.ones((5, 3)) * 50])
        localities, deltas = compute_localities(X, np.array([0, 1]),
                                                min_locality_size=2)
        assert deltas[0] == 0.0
        assert len(localities[0]) >= 2

    def test_needs_two_medoids(self):
        X = np.zeros((5, 2))
        with pytest.raises(ParameterError, match="at least 2 medoids"):
            compute_localities(X, np.array([0]))


class TestDimensionStatistics:
    def test_average_distance_per_dimension(self):
        X = np.array([[0.0, 0.0], [2.0, 6.0], [4.0, 2.0]])
        medoids = X[[0]]
        stats = dimension_statistics(X, medoids, [np.array([1, 2])])
        assert np.allclose(stats, [[3.0, 4.0]])

    def test_empty_locality_rejected(self):
        X = np.zeros((3, 2))
        with pytest.raises(ParameterError, match="empty"):
            dimension_statistics(X, X[[0]], [np.array([], dtype=int)])


class TestZScores:
    def test_standardisation(self):
        stats = np.array([[1.0, 2.0, 3.0]])
        z = zscores(stats)
        assert z[0, 0] == pytest.approx(-1.0)
        assert z[0, 1] == pytest.approx(0.0)
        assert z[0, 2] == pytest.approx(1.0)

    def test_zero_sigma_row_is_zero(self):
        z = zscores(np.array([[5.0, 5.0, 5.0], [1.0, 2.0, 3.0]]))
        assert np.allclose(z[0], 0.0)
        assert not np.allclose(z[1], 0.0)

    def test_single_dim_rejected(self):
        with pytest.raises(ParameterError, match="at least 2"):
            zscores(np.array([[1.0]]))


class TestAllocateDimensions:
    def test_budget_and_floor(self):
        rng = np.random.default_rng(0)
        z = rng.normal(size=(3, 8))
        sets = allocate_dimensions(z, total=9, min_per_row=2)
        assert sum(len(s) for s in sets) == 9
        assert all(len(s) >= 2 for s in sets)

    def test_greedy_picks_most_negative(self):
        z = np.array([
            [-5.0, -4.0, 0.0, 1.0],
            [-1.0, -0.5, 2.0, -9.0],
        ])
        sets = allocate_dimensions(z, total=5, min_per_row=2)
        # row 0 floor: dims 0, 1; row 1 floor: dims 3, 0
        # remaining 1 pick: most negative unused is z[1,1]=-0.5? vs z[0,2]=0.0
        assert sets[0] == (0, 1)
        assert sets[1] == (0, 1, 3)

    def test_exactly_the_floor(self):
        z = np.zeros((4, 5))
        sets = allocate_dimensions(z, total=8, min_per_row=2)
        assert all(len(s) == 2 for s in sets)

    def test_total_below_floor_rejected(self):
        with pytest.raises(ParameterError, match="floor"):
            allocate_dimensions(np.zeros((3, 5)), total=5, min_per_row=2)

    def test_total_above_capacity_rejected(self):
        with pytest.raises(ParameterError, match="exceeds"):
            allocate_dimensions(np.zeros((2, 3)), total=7, min_per_row=2)

    def test_min_per_row_above_d_rejected(self):
        with pytest.raises(ParameterError, match="exceeds dimensionality"):
            allocate_dimensions(np.zeros((2, 3)), total=8, min_per_row=4)

    def test_no_duplicate_dims_within_row(self):
        rng = np.random.default_rng(1)
        z = rng.normal(size=(4, 6))
        sets = allocate_dimensions(z, total=16, min_per_row=2)
        for s in sets:
            assert len(s) == len(set(s))


class TestFindDimensions:
    def test_recovers_planted_subspaces(self, two_cluster_points):
        X = two_cluster_points
        # medoids: one point from each cluster (cluster 0 = rows < 40)
        dims = find_dimensions(X, np.array([5, 45]), l=2)
        assert dims[0] == (0, 1)
        assert dims[1] == (2, 3)

    def test_respects_budget(self, two_cluster_points):
        dims = find_dimensions(two_cluster_points, np.array([5, 45]), l=3)
        assert sum(len(d) for d in dims) == 6

    def test_from_clusters_variant(self, two_cluster_points):
        X = two_cluster_points
        labels = np.repeat([0, 1], 40)
        dims = find_dimensions_from_clusters(X, labels, np.array([5, 45]), l=2)
        assert dims[0] == (0, 1)
        assert dims[1] == (2, 3)

    def test_from_clusters_empty_cluster_falls_back(self, two_cluster_points):
        X = two_cluster_points
        labels = np.zeros(80, dtype=int)  # cluster 1 empty
        fallback = [(0, 1), (2, 3)]
        dims = find_dimensions_from_clusters(
            X, labels, np.array([5, 45]), l=2, fallback=fallback,
        )
        assert dims[1] == (2, 3)
