"""Unit tests for PAM and CLARANS."""

import numpy as np
import pytest

from repro.baselines import CLARANS, PAM, clarans, pam
from repro.exceptions import ParameterError


@pytest.fixture(scope="module")
def three_blobs():
    rng = np.random.default_rng(5)
    centers = np.array([[0.0, 0.0], [50.0, 0.0], [0.0, 50.0]])
    pts = np.vstack([c + rng.normal(0, 1.0, size=(40, 2)) for c in centers])
    labels = np.repeat([0, 1, 2], 40)
    return pts, labels


def purity_of(found, true):
    from repro.metrics import purity
    return purity(found, true)


class TestPam:
    def test_separates_blobs(self, three_blobs):
        pts, true = three_blobs
        result = pam(pts, 3)
        assert purity_of(result.labels, true) > 0.95

    def test_medoids_are_data_points(self, three_blobs):
        pts, _ = three_blobs
        result = pam(pts, 3)
        assert np.array_equal(result.medoids, pts[result.medoid_indices])

    def test_cost_decreases_through_swaps(self, three_blobs):
        pts, _ = three_blobs
        result = pam(pts, 3)
        assert all(a >= b for a, b in zip(result.history, result.history[1:]))

    def test_k_one(self, three_blobs):
        pts, _ = three_blobs
        result = pam(pts, 1)
        assert result.k == 1
        assert (result.labels == 0).all()

    def test_k_above_n_rejected(self):
        with pytest.raises(ParameterError):
            pam(np.zeros((3, 2)), 4)

    def test_estimator_wrapper(self, three_blobs):
        pts, true = three_blobs
        labels = PAM(3).fit_predict(pts)
        assert purity_of(labels, true) > 0.95


class TestClarans:
    def test_separates_blobs(self, three_blobs):
        pts, true = three_blobs
        result = clarans(pts, 3, seed=1)
        assert purity_of(result.labels, true) > 0.95

    def test_deterministic_given_seed(self, three_blobs):
        pts, _ = three_blobs
        a = clarans(pts, 3, seed=9)
        b = clarans(pts, 3, seed=9)
        assert np.array_equal(a.medoid_indices, b.medoid_indices)

    def test_cost_close_to_pam(self, three_blobs):
        """CLARANS should find (near-)PAM-quality local minima here."""
        pts, _ = three_blobs
        exact = pam(pts, 3)
        approx = clarans(pts, 3, num_local=2, seed=2)
        assert approx.cost <= exact.cost * 1.05

    def test_history_one_entry_per_restart(self, three_blobs):
        pts, _ = three_blobs
        result = clarans(pts, 3, num_local=3, seed=3)
        assert len(result.history) == 3

    def test_cluster_sizes_sum_to_n(self, three_blobs):
        pts, _ = three_blobs
        result = clarans(pts, 3, seed=4)
        assert sum(result.cluster_sizes().values()) == 120

    def test_estimator_wrapper(self, three_blobs):
        pts, true = three_blobs
        est = CLARANS(3, seed=5).fit(pts)
        assert purity_of(est.result_.labels, true) > 0.95

    def test_euclidean_metric_option(self, three_blobs):
        pts, true = three_blobs
        result = clarans(pts, 3, metric="euclidean", seed=6)
        assert purity_of(result.labels, true) > 0.95
