"""Unit tests for MDL subspace pruning."""

import numpy as np
import pytest

from repro.baselines.clique.mdl import (
    mdl_code_length,
    mdl_optimal_cut,
    mdl_prune_subspaces,
)
from repro.exceptions import ParameterError


class TestCodeLength:
    def test_cut_bounds_validated(self):
        with pytest.raises(ParameterError):
            mdl_code_length(np.array([10.0, 5.0]), 0)
        with pytest.raises(ParameterError):
            mdl_code_length(np.array([10.0, 5.0]), 3)

    def test_finite_for_valid_cuts(self):
        values = np.array([100.0, 90.0, 5.0, 4.0])
        for cut in range(1, 5):
            assert np.isfinite(mdl_code_length(values, cut))


class TestOptimalCut:
    def test_clear_gap_found(self):
        # two high-coverage subspaces, three tiny ones
        coverages = [1000.0, 950.0, 10.0, 8.0, 5.0]
        assert mdl_optimal_cut(coverages) == 2

    def test_uniform_coverages_keep_all(self):
        coverages = [500.0] * 6
        assert mdl_optimal_cut(coverages) == 6

    def test_single_subspace(self):
        assert mdl_optimal_cut([42.0]) == 1

    def test_empty_rejected(self):
        with pytest.raises(ParameterError):
            mdl_optimal_cut([])


class TestPruneSubspaces:
    def test_keeps_high_coverage(self):
        coverages = {
            (0, 1): 1000,
            (2, 3): 980,
            (4, 5): 7,
            (6, 7): 6,
        }
        kept = mdl_prune_subspaces(coverages)
        assert set(kept) == {(0, 1), (2, 3)}

    def test_empty_input(self):
        assert mdl_prune_subspaces({}) == []

    def test_deterministic_tie_break(self):
        coverages = {(1,): 10, (0,): 10, (2,): 10}
        a = mdl_prune_subspaces(dict(coverages))
        b = mdl_prune_subspaces(dict(reversed(list(coverages.items()))))
        assert a == b
