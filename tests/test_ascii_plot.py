"""Unit tests for the ASCII chart renderer."""

import pytest

from repro.exceptions import ParameterError
from repro.experiments.ascii_plot import ascii_chart


class TestAsciiChart:
    def test_renders_markers_and_legend(self):
        text = ascii_chart([1, 2, 3], {"a": [1.0, 2.0, 3.0],
                                       "b": [3.0, 2.0, 1.0]})
        assert "* a" in text
        assert "o b" in text
        canvas = [l for l in text.splitlines() if "|" in l]
        assert any("*" in l for l in canvas)
        assert any("o" in l for l in canvas)

    def test_dimensions(self):
        text = ascii_chart([0, 1], {"s": [1.0, 2.0]}, width=30, height=8)
        canvas_lines = [l for l in text.splitlines() if "|" in l]
        assert len(canvas_lines) == 8
        assert all(len(l.split("|", 1)[1]) <= 30 for l in canvas_lines)

    def test_log_scale(self):
        text = ascii_chart([1, 2, 3], {"s": [1.0, 100.0, 10000.0]},
                           log_y=True)
        assert "log scale" in text
        assert "1.0e+04" in text

    def test_log_scale_rejects_nonpositive(self):
        with pytest.raises(ParameterError, match="strictly positive"):
            ascii_chart([1, 2], {"s": [0.0, 1.0]}, log_y=True)

    def test_constant_series_ok(self):
        text = ascii_chart([1, 2, 3], {"s": [5.0, 5.0, 5.0]})
        assert "*" in text

    def test_empty_rejected(self):
        with pytest.raises(ParameterError):
            ascii_chart([], {"s": []})
        with pytest.raises(ParameterError):
            ascii_chart([1], {})

    def test_length_mismatch_rejected(self):
        with pytest.raises(ParameterError, match="x positions"):
            ascii_chart([1, 2], {"s": [1.0]})

    def test_too_many_series_rejected(self):
        series = {f"s{i}": [1.0] for i in range(9)}
        with pytest.raises(ParameterError, match="at most"):
            ascii_chart([1], series)

    def test_title_first_line(self):
        text = ascii_chart([1, 2], {"s": [1.0, 2.0]}, title="Figure")
        assert text.splitlines()[0] == "Figure"

    def test_x_axis_labels(self):
        text = ascii_chart([10, 500], {"s": [1.0, 2.0]}, x_label="N")
        last_lines = text.splitlines()[-2]
        assert "10" in last_lines and "500" in last_lines and "N" in last_lines
