"""Unit tests for ProclusConfig validation and ProclusResult accessors."""

import numpy as np
import pytest

from repro.core import ProclusConfig, ProclusResult
from repro.exceptions import ParameterError


class TestProclusConfig:
    def test_valid_defaults(self):
        cfg = ProclusConfig(k=5, l=7).validated(n_points=1000, n_dims=20)
        assert cfg.total_dimensions == 35
        assert cfg.sample_size == 150
        assert cfg.pool_size == 25

    def test_pool_factor_above_sample_rejected(self):
        with pytest.raises(ParameterError, match="pool_factor"):
            ProclusConfig(k=3, l=3, sample_factor=2,
                          pool_factor=5).validated(1000, 10)

    def test_min_deviation_must_be_fraction(self):
        with pytest.raises(ParameterError):
            ProclusConfig(k=3, l=3, min_deviation=1.0).validated(1000, 10)

    def test_min_dims_above_l_rejected(self):
        with pytest.raises(ParameterError, match="min_dims_per_cluster"):
            ProclusConfig(k=3, l=2, min_dims_per_cluster=3).validated(1000, 10)

    def test_k_above_n_rejected(self):
        with pytest.raises(ParameterError):
            ProclusConfig(k=50, l=2).validated(10, 10)

    def test_fractional_l(self):
        cfg = ProclusConfig(k=4, l=2.5).validated(1000, 10)
        assert cfg.total_dimensions == 10


def make_result():
    labels = np.array([0, 0, 1, 1, 1, -1, 2, -1])
    medoids = np.arange(9, dtype=float).reshape(3, 3)
    return ProclusResult(
        labels=labels,
        medoids=medoids,
        medoid_indices=np.array([0, 2, 6]),
        dimensions={0: (0, 1), 1: (1, 2), 2: (0, 2)},
        objective=1.25,
        n_iterations=10,
        n_improvements=4,
        terminated_by="no_improvement",
    )


class TestProclusResult:
    def test_counts(self):
        r = make_result()
        assert r.k == 3
        assert r.n_points == 8
        assert r.n_outliers == 2
        assert r.cluster_sizes() == {0: 2, 1: 3, 2: 1}

    def test_cluster_indices(self):
        r = make_result()
        assert r.cluster_indices(1).tolist() == [2, 3, 4]
        assert r.outlier_indices.tolist() == [5, 7]

    def test_clusters_mapping(self):
        r = make_result()
        clusters = r.clusters()
        assert set(clusters) == {0, 1, 2}
        assert clusters[0].tolist() == [0, 1]

    def test_average_dimensionality(self):
        assert make_result().average_dimensionality == 2.0

    def test_to_dict_round_trippable(self):
        import json
        d = make_result().to_dict()
        encoded = json.dumps(d)
        assert json.loads(encoded)["k"] == 3

    def test_summary_mentions_key_numbers(self):
        text = make_result().summary()
        assert "k=3" in text
        assert "outliers=2" in text
        assert "cluster 0" in text


class TestResultSerialization:
    def test_round_trip(self, tmp_path):
        from repro.core import load_result, save_result
        original = make_result()
        original.objective_history = [3.0, 2.0, 1.25]
        original.phase_seconds = {"initialization": 0.1, "iterative": 0.5,
                                  "refinement": 0.05}
        path = tmp_path / "result.npz"
        save_result(original, path)
        loaded = load_result(path)
        assert np.array_equal(loaded.labels, original.labels)
        assert np.array_equal(loaded.medoids, original.medoids)
        assert loaded.dimensions == original.dimensions
        assert loaded.objective == original.objective
        assert loaded.objective_history == original.objective_history
        assert loaded.phase_seconds == original.phase_seconds
        assert loaded.terminated_by == original.terminated_by

    def test_rejects_foreign_npz(self, tmp_path):
        from repro.core import load_result
        from repro.exceptions import DataError
        path = tmp_path / "foreign.npz"
        np.savez(path, something=np.zeros(3))
        with pytest.raises(DataError, match="not a saved ProclusResult"):
            load_result(path)

    def test_load_with_fingerprint_single_read(self, tmp_path):
        # the serving path needs arrays + identity from ONE read; the
        # combined loader must agree with the standalone fingerprint
        from repro.core import (load_result, load_result_with_fingerprint,
                                result_fingerprint, save_result)
        path = tmp_path / "fp.npz"
        save_result(make_result(), path)
        result, fingerprint = load_result_with_fingerprint(path)
        assert fingerprint == result_fingerprint(path)
        assert np.array_equal(result.labels, load_result(path).labels)

    def test_fitted_result_round_trip(self, tmp_path):
        """Save/load the result of an actual fit."""
        from repro import proclus
        from repro.core import load_result, save_result
        from repro.data import generate
        ds = generate(300, 8, 2, cluster_dim_counts=[3, 3], seed=5)
        result = proclus(ds.points, 2, 3, seed=5, max_bad_tries=5)
        path = tmp_path / "fit.npz"
        save_result(result, path)
        loaded = load_result(path)
        assert np.array_equal(loaded.labels, result.labels)
        assert loaded.iterative_objective == result.iterative_objective
