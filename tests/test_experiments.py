"""Tests for the experiment harness (small-scale runs of each runner)."""

import pytest

from repro.exceptions import ParameterError
from repro.experiments import (
    format_series,
    format_table,
    get_experiment,
    list_experiments,
    run_accuracy_case,
    run_locality_theorem_check,
    run_scalability_space_dim,
)
from repro.experiments.configs import (
    CASE1_DIMS,
    CASE2_DIMS,
    make_case_config,
    make_scalability_config,
)


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(["a", "bbb"], [[1, 2.5], [10, 0.125]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(l) == len(lines[0]) for l in lines[1:])

    def test_format_series(self):
        text = format_series("x", ["y1", "y2"], [1, 2], [[0.1, 0.2], [1.0, 2.0]])
        assert "y1" in text and "y2" in text

    def test_title_rendered(self):
        assert format_table(["a"], [[1]], title="T").startswith("T")


class TestConfigs:
    def test_case1(self):
        cfg = make_case_config(1, n_points=500)
        assert cfg.cluster_dim_counts == CASE1_DIMS
        assert cfg.l == 7
        assert cfg.synthetic_config().n_points == 500

    def test_case2_average_is_four(self):
        cfg = make_case_config(2)
        assert cfg.cluster_dim_counts == CASE2_DIMS
        assert sum(CASE2_DIMS) / len(CASE2_DIMS) == cfg.l == 4

    def test_invalid_case(self):
        with pytest.raises(ValueError):
            make_case_config(3)

    def test_scalability_config(self):
        cfg = make_scalability_config(1000, 30, 6)
        assert cfg.n_dims == 30
        assert cfg.cluster_dim_counts == [6] * 5


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        names = {name for name, _ in list_experiments()}
        for required in ("table1", "table2", "table3", "table4", "table5",
                         "fig7", "fig8", "fig9"):
            assert required in names

    def test_lookup(self):
        assert callable(get_experiment("table1"))

    def test_unknown(self):
        with pytest.raises(ParameterError):
            get_experiment("table99")


class TestAccuracyRunner:
    @pytest.fixture(scope="class")
    def report(self):
        return run_accuracy_case(1, n_points=2000, seed=70, max_bad_tries=10)

    def test_report_fields(self, report):
        assert report.dataset.n_points == 2000
        assert report.result.k == 5
        assert 0.0 <= report.mean_dominance <= 1.0
        assert 0.0 <= report.exact_dimension_rate <= 1.0

    def test_report_quality_sane(self, report):
        """Even at toy scale the structure should be mostly right."""
        assert report.ari > 0.4
        assert report.mean_dominance > 0.6

    def test_text_contains_tables(self, report):
        text = report.to_text()
        assert "Input clusters" in text
        assert "Output clusters" in text
        assert "Confusion matrix" in text
        assert "adjusted Rand index" in text

    def test_case2_runs(self):
        rep = run_accuracy_case(2, n_points=1500, seed=70, max_bad_tries=5)
        assert rep.case.l == 4
        assert rep.result.k == 5


class TestScalabilityRunner:
    def test_space_dim_series(self):
        rep = run_scalability_space_dim(dims=(6, 8), n_points=400,
                                        cluster_dim=3)
        assert rep.x_values == [6.0, 8.0]
        assert len(rep.series["PROCLUS"]) == 2
        assert all(s > 0 for s in rep.series["PROCLUS"])
        assert "Figure 9" in rep.to_text()

    def test_slope_and_ratios(self):
        from repro.experiments import ScalabilityReport
        rep = ScalabilityReport(x_label="N", x_values=[1.0, 2.0, 4.0],
                                series={"a": [1.0, 2.0, 4.0]})
        assert rep.slope("a") == pytest.approx(1.0)
        assert rep.growth_ratios("a") == [2.0, 2.0]

    def test_speedup(self):
        from repro.experiments import ScalabilityReport
        rep = ScalabilityReport(x_label="N", x_values=[1.0],
                                series={"fast": [1.0], "slow": [10.0]})
        assert rep.speedup("fast", "slow") == [10.0]


class TestTheoremCheck:
    def test_locality_close_to_n_over_k(self):
        rep = run_locality_theorem_check(n_points=2000, k=4, n_trials=40,
                                         seed=11)
        assert rep.expected == 500.0
        assert rep.relative_error < 0.25
        assert "Theorem 3.1" in rep.to_text()
