"""Unit tests for dataset CSV/NPZ round-trips."""

import numpy as np
import pytest

from repro.data import generate, load_csv, load_npz, save_csv, save_npz
from repro.exceptions import DataError


@pytest.fixture
def dataset():
    return generate(50, 6, 2, cluster_dim_counts=[3, 2], seed=42, name="io-test")


class TestCsv:
    def test_round_trip_points_exact(self, dataset, tmp_path):
        path = save_csv(dataset, tmp_path / "ds.csv")
        loaded = load_csv(path)
        assert np.array_equal(loaded.points, dataset.points)

    def test_round_trip_labels(self, dataset, tmp_path):
        loaded = load_csv(save_csv(dataset, tmp_path / "ds.csv"))
        assert np.array_equal(loaded.labels, dataset.labels)

    def test_round_trip_dims_and_name(self, dataset, tmp_path):
        loaded = load_csv(save_csv(dataset, tmp_path / "ds.csv"))
        assert loaded.cluster_dimensions == dataset.cluster_dimensions
        assert loaded.name == "io-test"

    def test_unlabelled_round_trip(self, dataset, tmp_path):
        blind = dataset.without_ground_truth()
        loaded = load_csv(save_csv(blind, tmp_path / "blind.csv"))
        assert loaded.labels is None
        assert np.array_equal(loaded.points, blind.points)

    def test_empty_file_rejected(self, tmp_path):
        p = tmp_path / "empty.csv"
        p.write_text("# name: nothing\nx0,x1\n")
        with pytest.raises(DataError, match="no data rows"):
            load_csv(p)


class TestNpz:
    def test_round_trip(self, dataset, tmp_path):
        path = tmp_path / "ds.npz"
        save_npz(dataset, path)
        loaded = load_npz(path)
        assert np.array_equal(loaded.points, dataset.points)
        assert np.array_equal(loaded.labels, dataset.labels)
        assert loaded.cluster_dimensions == dataset.cluster_dimensions
        assert loaded.name == "io-test"

    def test_unlabelled(self, dataset, tmp_path):
        path = tmp_path / "blind.npz"
        save_npz(dataset.without_ground_truth(), path)
        assert load_npz(path).labels is None
