"""Package-surface tests: public API integrity and documentation.

Guards against silent API breakage: every name in each package's
``__all__`` must be importable, and every public callable must carry a
docstring (the library's documentation contract).
"""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.distance",
    "repro.data",
    "repro.baselines",
    "repro.baselines.clique",
    "repro.metrics",
    "repro.experiments",
    "repro.extensions",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_all_exports_resolve(package):
    module = importlib.import_module(package)
    assert hasattr(module, "__all__"), f"{package} lacks __all__"
    for name in module.__all__:
        assert hasattr(module, name), f"{package}.{name} in __all__ but missing"


@pytest.mark.parametrize("package", PACKAGES)
def test_public_callables_documented(package):
    module = importlib.import_module(package)
    undocumented = []
    for name in module.__all__:
        obj = getattr(module, name)
        if callable(obj) and not inspect.getdoc(obj):
            undocumented.append(name)
    assert not undocumented, f"{package}: missing docstrings on {undocumented}"


@pytest.mark.parametrize("package", PACKAGES)
def test_module_docstrings(package):
    module = importlib.import_module(package)
    assert inspect.getdoc(module), f"{package} lacks a module docstring"


def test_version_string():
    import repro
    parts = repro.__version__.split(".")
    assert len(parts) == 3
    assert all(p.isdigit() for p in parts)


def test_public_classes_have_documented_methods():
    """Spot-check the flagship classes: public methods documented."""
    from repro import Proclus, ProclusResult
    from repro.baselines import Clique

    for cls in (Proclus, ProclusResult, Clique):
        for name, member in inspect.getmembers(cls):
            if name.startswith("_") or not callable(member):
                continue
            assert inspect.getdoc(member), f"{cls.__name__}.{name} undocumented"
