"""Unit tests for the Manhattan segmental distance (paper section 1.2)."""

import numpy as np
import pytest

from repro.distance import (
    ManhattanSegmentalDistance,
    manhattan,
    pairwise_segmental,
    segmental_distance,
    segmental_distances_to_point,
)
from repro.exceptions import ParameterError


class TestSegmentalDistance:
    def test_is_average_per_dimension(self):
        a = [0.0, 0.0, 0.0, 0.0]
        b = [2.0, 4.0, 100.0, -50.0]
        # dims {0, 1}: (2 + 4) / 2 = 3
        assert segmental_distance(a, b, [0, 1]) == 3.0

    def test_full_dims_equals_manhattan_over_d(self):
        rng = np.random.default_rng(0)
        a, b = rng.normal(size=6), rng.normal(size=6)
        full = segmental_distance(a, b, range(6))
        assert full == pytest.approx(manhattan(a, b) / 6)

    def test_single_dimension(self):
        assert segmental_distance([1, 9], [4, 9], [0]) == 3.0

    def test_ignores_other_dims(self):
        a = [0.0, 123.0]
        b = [1.0, -999.0]
        assert segmental_distance(a, b, [0]) == 1.0

    def test_empty_dims_rejected(self):
        with pytest.raises(ParameterError, match="non-empty"):
            segmental_distance([1.0], [2.0], [])

    def test_normalisation_makes_subspaces_comparable(self):
        # same per-dimension gap; distances must agree despite |D| differing
        a = np.zeros(8)
        b = np.full(8, 3.0)
        assert segmental_distance(a, b, [0, 1]) == pytest.approx(
            segmental_distance(a, b, [2, 3, 4, 5])
        )


class TestBatch:
    def test_matches_scalar(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(15, 5))
        p = rng.normal(size=5)
        dims = [0, 2, 4]
        batch = segmental_distances_to_point(X, p, dims)
        expected = [segmental_distance(x, p, dims) for x in X]
        assert np.allclose(batch, expected)

    def test_pairwise_symmetric_with_zero_diagonal(self):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(8, 4))
        m = pairwise_segmental(X, [1, 3])
        assert np.allclose(m, m.T)
        assert np.allclose(np.diag(m), 0.0)

    def test_pairwise_matches_scalar(self):
        rng = np.random.default_rng(3)
        X = rng.normal(size=(5, 4))
        m = pairwise_segmental(X, [0, 1])
        for i in range(5):
            for j in range(5):
                assert m[i, j] == pytest.approx(
                    segmental_distance(X[i], X[j], [0, 1])
                )

    def test_chunked_matches_unchunked_exactly(self):
        # a 1 KiB budget forces row chunking; per-row means are
        # independent, so the values must be bit-identical
        rng = np.random.default_rng(5)
        X = rng.normal(size=(500, 6))
        p = rng.normal(size=6)
        dims = [0, 2, 3, 5]
        full = segmental_distances_to_point(X, p, dims)
        chunked = segmental_distances_to_point(
            X, p, dims, memory_budget_bytes=1024)
        assert np.array_equal(full, chunked)


class TestMetricObject:
    def test_callable_form(self):
        metric = ManhattanSegmentalDistance([0, 1])
        assert metric([0, 0, 5], [2, 4, 99]) == 3.0

    def test_registry_style_name(self):
        metric = ManhattanSegmentalDistance([2, 0])
        assert metric.name == "segmental[0,2]"

    def test_triangle_inequality(self):
        rng = np.random.default_rng(4)
        metric = ManhattanSegmentalDistance([0, 2])
        for _ in range(25):
            a, b, c = rng.normal(size=(3, 4))
            assert metric(a, c) <= metric(a, b) + metric(b, c) + 1e-9
