"""Unit tests for the fault-tolerant run supervisor building blocks.

Process-fault end-to-end scenarios (killed/hung/corrupting workers,
interrupt + resume bit-identity) live in ``test_supervisor_chaos.py``;
this module covers the pieces in isolation: seed-state tokens, the
atomic checkpoint store, manifest validation, signal-guard mechanics,
shared-memory leak guards, parameter validation, and diagnostics
serialization.
"""

import json
import signal

import numpy as np
import pytest

from repro import proclus
from repro.core.serialization import load_result, save_result
from repro.data import generate
from repro.exceptions import CheckpointError, ParameterError
from repro.perf.parallel import SharedMatrix
from repro.rng import ensure_rng, spawn
from repro.robustness.faults import ProcessFaultSpec
from repro.robustness.supervisor import (
    RunCheckpoint,
    run_fingerprint,
    seed_state_token,
    signal_guard,
)

pytestmark = pytest.mark.filterwarnings(
    "ignore::repro.exceptions.SanitizationWarning")

FAST = dict(max_bad_tries=3, max_iterations=40, keep_history=False)


@pytest.fixture(scope="module")
def workload():
    return generate(300, 8, 3, cluster_dim_counts=[3, 3, 3],
                    outlier_fraction=0.05, seed=31)


def _fingerprint(result):
    return (
        result.labels.tobytes(),
        result.medoid_indices.tobytes(),
        tuple(sorted(result.dimensions.items())),
        result.objective,
        result.iterative_objective,
        result.terminated_by,
    )


# ----------------------------------------------------------------------
# Seed-state tokens and run fingerprints
# ----------------------------------------------------------------------

class TestSeedStateToken:
    def test_identical_streams_share_a_token(self):
        a = np.random.default_rng(7)
        b = np.random.default_rng(7)
        assert seed_state_token(a) == seed_state_token(b)

    def test_advancing_the_stream_changes_the_token(self):
        g = np.random.default_rng(7)
        before = seed_state_token(g)
        g.random()
        assert seed_state_token(g) != before

    def test_spawned_children_get_distinct_tokens(self):
        children = spawn(ensure_rng(3), 4)
        tokens = {seed_state_token(c) for c in children}
        assert len(tokens) == 4


class TestRunFingerprint:
    def test_sensitive_to_parameters_and_seeds(self):
        kwargs = dict(k=3, l=3.0, metric="euclidean")
        base = run_fingerprint(kwargs, 4, ["a", "b"])
        assert run_fingerprint(dict(kwargs, k=4), 4, ["a", "b"]) != base
        assert run_fingerprint(kwargs, 5, ["a", "b"]) != base
        assert run_fingerprint(kwargs, 4, ["a", "c"]) != base
        assert run_fingerprint(dict(kwargs), 4, ["a", "b"]) == base

    def test_non_json_values_fingerprint_by_type(self):
        from repro.distance.lp import ManhattanDistance

        fp1 = run_fingerprint({"metric": ManhattanDistance()}, 2, ["t"])
        fp2 = run_fingerprint({"metric": ManhattanDistance()}, 2, ["t"])
        assert fp1 == fp2


# ----------------------------------------------------------------------
# Checkpoint store
# ----------------------------------------------------------------------

class TestRunCheckpoint:
    def _fit_result(self, workload):
        return proclus(workload.points, 3, 3, seed=5, **FAST)

    def test_record_then_resume_roundtrip(self, tmp_path, workload):
        children = spawn(ensure_rng(9), 3)
        kwargs = dict(k=3, l=3.0)
        ckpt = RunCheckpoint.open(tmp_path, children=children,
                                  fit_kwargs=kwargs, resume=False)
        result = self._fit_result(workload)
        ckpt.record(1, result, ["a note"], 0.25)

        resumed = RunCheckpoint.open(tmp_path, children=spawn(ensure_rng(9), 3),
                                     fit_kwargs=kwargs, resume=True)
        loaded = resumed.completed()
        assert set(loaded) == {1}
        got, notes, seconds = loaded[1]
        assert _fingerprint(got) == _fingerprint(result)
        assert notes == ["a note"]
        assert seconds == 0.25

    def test_resume_without_manifest_raises(self, tmp_path):
        with pytest.raises(CheckpointError, match="no checkpoint manifest"):
            RunCheckpoint.open(tmp_path / "empty",
                               children=spawn(ensure_rng(9), 2),
                               fit_kwargs={}, resume=True)

    def test_resume_with_unreadable_manifest_raises(self, tmp_path):
        (tmp_path / "manifest.json").write_text("{not json")
        with pytest.raises(CheckpointError, match="unreadable"):
            RunCheckpoint.open(tmp_path, children=spawn(ensure_rng(9), 2),
                               fit_kwargs={}, resume=True)

    def test_resume_of_a_different_run_raises(self, tmp_path):
        kwargs = dict(k=3, l=3.0)
        RunCheckpoint.open(tmp_path, children=spawn(ensure_rng(9), 2),
                           fit_kwargs=kwargs, resume=False)
        with pytest.raises(CheckpointError, match="different run"):
            RunCheckpoint.open(tmp_path, children=spawn(ensure_rng(10), 2),
                               fit_kwargs=kwargs, resume=True)
        with pytest.raises(CheckpointError, match="different run"):
            RunCheckpoint.open(tmp_path, children=spawn(ensure_rng(9), 2),
                               fit_kwargs=dict(k=4, l=3.0), resume=True)

    def test_corrupt_payload_is_discarded_not_raised(self, tmp_path, workload):
        children = spawn(ensure_rng(9), 2)
        kwargs = dict(k=3, l=3.0)
        ckpt = RunCheckpoint.open(tmp_path, children=children,
                                  fit_kwargs=kwargs, resume=False)
        ckpt.record(0, self._fit_result(workload), [], 0.1)
        (tmp_path / "restart_00000.npz").write_bytes(b"garbage")

        resumed = RunCheckpoint.open(tmp_path,
                                     children=spawn(ensure_rng(9), 2),
                                     fit_kwargs=kwargs, resume=True)
        assert resumed.completed() == {}
        assert resumed.discarded == 1

    def test_manifest_writes_are_atomic(self, tmp_path, workload):
        children = spawn(ensure_rng(9), 2)
        ckpt = RunCheckpoint.open(tmp_path, children=children,
                                  fit_kwargs={}, resume=False)
        ckpt.record(0, self._fit_result(workload), [], 0.1)
        # no temp droppings left behind; the manifest parses
        leftovers = [p for p in tmp_path.iterdir() if ".tmp" in p.name]
        assert leftovers == []
        json.loads((tmp_path / "manifest.json").read_text())


# ----------------------------------------------------------------------
# Signal guard
# ----------------------------------------------------------------------

class TestSignalGuard:
    def test_handlers_restored_after_block(self):
        before = signal.getsignal(signal.SIGINT)
        with signal_guard() as watch:
            assert signal.getsignal(signal.SIGINT) is not before
        assert signal.getsignal(signal.SIGINT) is before
        assert not watch.stop_requested

    def test_one_shot_restores_on_first_signal(self):
        before = signal.getsignal(signal.SIGINT)
        with signal_guard() as watch:
            handler = signal.getsignal(signal.SIGINT)
            handler(signal.SIGINT, None)
            assert watch.stop_requested and watch.signum == signal.SIGINT
            # the guard stood down immediately: a second signal would
            # take the previous (default) path
            assert signal.getsignal(signal.SIGINT) is before
        assert signal.getsignal(signal.SIGINT) is before

    def test_disabled_guard_touches_nothing(self):
        before = signal.getsignal(signal.SIGINT)
        with signal_guard(enabled=False) as watch:
            assert signal.getsignal(signal.SIGINT) is before
        assert not watch.stop_requested


# ----------------------------------------------------------------------
# Shared-memory leak guards
# ----------------------------------------------------------------------

class TestSharedMatrixGuards:
    def test_unlink_is_idempotent(self):
        plane = SharedMatrix.publish(np.eye(3))
        plane.unlink()
        plane.unlink()  # second call must be a no-op, not an error

    def test_finalizer_reclaims_unlinked_segment(self):
        plane = SharedMatrix.publish(np.eye(3))
        name = plane.descriptor["name"]
        assert plane._finalizer.alive
        plane._finalizer()  # simulate GC / interpreter exit
        from multiprocessing import shared_memory

        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_explicit_unlink_disarms_the_finalizer(self):
        plane = SharedMatrix.publish(np.eye(3))
        plane.unlink()
        assert not plane._finalizer.alive


# ----------------------------------------------------------------------
# Parameter validation and spec contracts
# ----------------------------------------------------------------------

class TestValidation:
    def test_negative_max_retries_rejected(self, workload):
        with pytest.raises(ParameterError, match="max_retries"):
            proclus(workload.points, 3, 3, restarts=2, max_retries=-1,
                    seed=1, **FAST)

    def test_bad_restart_timeout_rejected(self, workload):
        with pytest.raises(ParameterError, match="restart_timeout_s"):
            proclus(workload.points, 3, 3, restarts=2,
                    restart_timeout_s=-2.0, seed=1, **FAST)

    def test_resume_requires_checkpoint_dir(self, workload):
        with pytest.raises(ParameterError, match="checkpoint_dir"):
            proclus(workload.points, 3, 3, restarts=2, resume=True,
                    seed=1, **FAST)

    def test_unknown_process_fault_kind_rejected(self):
        with pytest.raises(ParameterError, match="fault kind"):
            ProcessFaultSpec(kind="meltdown")

    def test_fault_spec_targets_index_and_attempts(self):
        spec = ProcessFaultSpec(kind="crash", index=2, times=2)
        assert spec.fires(2, 0) and spec.fires(2, 1)
        assert not spec.fires(2, 2)
        assert not spec.fires(1, 0)


# ----------------------------------------------------------------------
# Diagnostics serialization
# ----------------------------------------------------------------------

class TestFaultToleranceDiagnostics:
    def test_survives_to_dict_and_save_load(self, tmp_path, workload):
        result = proclus(workload.points, 3, 3, restarts=2, seed=5,
                         checkpoint_dir=str(tmp_path / "ck"), **FAST)
        ft = result.fault_tolerance
        assert ft is not None
        assert ft["checkpoint_dir"] == str(tmp_path / "ck")
        assert result.to_dict()["fault_tolerance"] == ft
        json.dumps(result.to_dict())  # stays JSON-serializable

        path = save_result(result, tmp_path / "run.npz")
        assert load_result(path).fault_tolerance == ft

    def test_plain_fits_report_none(self, workload):
        result = proclus(workload.points, 3, 3, restarts=2, seed=5, **FAST)
        assert result.fault_tolerance is None
        assert result.to_dict()["fault_tolerance"] is None
