"""Integration-level tests for the CLIQUE driver."""

import numpy as np
import pytest

from repro.baselines import Clique
from repro.data import generate
from repro.exceptions import NotFittedError, ParameterError


@pytest.fixture(scope="module")
def small_projected():
    """Two clusters in different 2-dim subspaces of a 6-dim space."""
    return generate(
        1200, 6, 2, cluster_dims=[[0, 1], [3, 4]],
        outlier_fraction=0.05, seed=23,
    )


class TestDriver:
    def test_finds_planted_subspaces(self, small_projected):
        c = Clique(xi=10, tau=0.02).fit(small_projected.points)
        subspaces_2d = {
            cl.dims for cl in c.result.clusters_of_dimensionality(2)
        }
        assert (0, 1) in subspaces_2d
        assert (3, 4) in subspaces_2d

    def test_clusters_capture_cluster_points(self, small_projected):
        ds = small_projected
        c = Clique(xi=10, tau=0.02).fit(ds.points)
        best = {}
        for cl in c.result.clusters_of_dimensionality(2):
            if cl.dims in ((0, 1), (3, 4)):
                best[cl.dims] = max(
                    best.get(cl.dims, 0), cl.n_points
                )
        # each planted cluster's densest region holds a solid share of it
        sizes = ds.cluster_sizes()
        assert best[(0, 1)] > 0.4 * sizes[0]
        assert best[(3, 4)] > 0.4 * sizes[1]

    def test_target_dimensionality_filters(self, small_projected):
        c = Clique(xi=10, tau=0.02,
                   target_dimensionality=2).fit(small_projected.points)
        assert all(cl.dimensionality == 2 for cl in c.result.clusters)

    def test_max_dimensionality_caps_pass(self, small_projected):
        c = Clique(xi=10, tau=0.02,
                   max_dimensionality=1).fit(small_projected.points)
        assert c.result.max_dimensionality == 1

    def test_point_membership_consistent(self, small_projected):
        ds = small_projected
        c = Clique(xi=10, tau=0.02).fit(ds.points)
        cl = max(c.result.clusters_of_dimensionality(2),
                 key=lambda x: x.n_points)
        # every member's cell must be one of the cluster's units
        cells = c.grid_.cell_indices(ds.points)
        unit_set = {u.intervals for u in cl.units}
        for idx in cl.point_indices[:100]:
            cell = tuple(int(cells[idx, d]) for d in cl.dims)
            assert cell in unit_set

    def test_overlap_at_least_one(self, small_projected):
        c = Clique(xi=10, tau=0.02).fit(small_projected.points)
        assert c.result.average_overlap >= 1.0

    def test_projections_reported_too(self, small_projected):
        """CLIQUE's hallmark: 1-dim projections of dense regions appear."""
        c = Clique(xi=10, tau=0.02).fit(small_projected.points)
        assert len(c.result.clusters_of_dimensionality(1)) > 0

    def test_mdl_pruning_reduces_units(self, small_projected):
        full = Clique(xi=10, tau=0.02).fit(small_projected.points)
        pruned = Clique(xi=10, tau=0.02,
                        prune_subspaces=True).fit(small_projected.points)
        assert pruned.result.n_dense_units <= full.result.n_dense_units

    def test_cover_computed_on_demand(self, small_projected):
        c = Clique(xi=10, tau=0.02, compute_cover=True,
                   max_dimensionality=2).fit(small_projected.points)
        top = c.result.clusters_of_dimensionality(2)
        assert any(cl.rectangles for cl in top)

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            _ = Clique().result

    def test_invalid_tau(self):
        with pytest.raises(ParameterError):
            Clique(tau=0.0)

    def test_target_above_max_rejected(self):
        with pytest.raises(ParameterError):
            Clique(max_dimensionality=2, target_dimensionality=3)

    def test_membership_counts(self, small_projected):
        c = Clique(xi=10, tau=0.02).fit(small_projected.points)
        counts = c.result.membership_counts()
        assert counts.shape == (1200,)
        assert counts.max() >= 1

    def test_summary_renders(self, small_projected):
        c = Clique(xi=10, tau=0.02).fit(small_projected.points)
        text = c.result.summary()
        assert "CLIQUE result" in text
        assert "coverage" in text


class TestClustersContaining:
    def test_member_point_found(self, small_projected):
        c = Clique(xi=10, tau=0.02).fit(small_projected.points)
        top = max(c.result.clusters_of_dimensionality(2),
                  key=lambda cl: cl.n_points)
        idx = int(top.point_indices[0])
        hits = c.clusters_containing(small_projected.points[idx])
        assert top.cluster_id in hits

    def test_far_point_in_no_cluster(self, small_projected):
        import numpy as np
        c = Clique(xi=10, tau=0.02, max_dimensionality=2).fit(
            small_projected.points)
        # a corner far from both planted clusters usually hits at most
        # low-dimensional background units; with a high threshold, none
        c_high = Clique(xi=10, tau=0.2, max_dimensionality=2).fit(
            small_projected.points)
        hits = c_high.clusters_containing(
            np.full(small_projected.n_dims, 99.9))
        assert hits == [] or all(isinstance(h, int) for h in hits)

    def test_unfitted_raises(self):
        import numpy as np
        with pytest.raises(NotFittedError):
            Clique().clusters_containing(np.zeros(3))
