"""Unit tests for Lp distances."""

import numpy as np
import pytest

from repro.distance import (
    ChebyshevDistance,
    EuclideanDistance,
    LpDistance,
    ManhattanDistance,
    chebyshev,
    euclidean,
    lp_distance,
    manhattan,
)
from repro.exceptions import ParameterError


class TestManhattan:
    def test_known_value(self):
        assert manhattan([0, 0], [3, 4]) == 7.0

    def test_zero_for_identical(self):
        assert manhattan([1.5, -2, 3], [1.5, -2, 3]) == 0.0

    def test_symmetry(self):
        a, b = [1, 2, 3], [4, 0, -1]
        assert manhattan(a, b) == manhattan(b, a)

    def test_batch_matches_scalar(self):
        m = ManhattanDistance()
        X = np.array([[0.0, 0.0], [1.0, 1.0], [-2.0, 5.0]])
        p = np.array([1.0, -1.0])
        batch = m.pairwise_to_point(X, p)
        expected = [m(x, p) for x in X]
        assert np.allclose(batch, expected)


class TestEuclidean:
    def test_known_value(self):
        assert euclidean([0, 0], [3, 4]) == 5.0

    def test_le_manhattan(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            a, b = rng.normal(size=5), rng.normal(size=5)
            assert euclidean(a, b) <= manhattan(a, b) + 1e-12

    def test_batch_matches_scalar(self):
        m = EuclideanDistance()
        X = np.random.default_rng(1).normal(size=(10, 4))
        p = np.zeros(4)
        assert np.allclose(
            m.pairwise_to_point(X, p), np.linalg.norm(X, axis=1)
        )


class TestChebyshev:
    def test_known_value(self):
        assert chebyshev([0, 0, 0], [1, -5, 2]) == 5.0

    def test_is_lp_limit(self):
        a = np.array([0.0, 0.0, 0.0])
        b = np.array([1.0, 2.0, 3.0])
        big_p = lp_distance(a, b, 64)
        assert big_p == pytest.approx(chebyshev(a, b), rel=0.05)


class TestLp:
    def test_p1_equals_manhattan(self):
        a, b = [1.0, 2.0], [4.0, -2.0]
        assert lp_distance(a, b, 1) == pytest.approx(manhattan(a, b))

    def test_p2_equals_euclidean(self):
        a, b = [1.0, 2.0], [4.0, -2.0]
        assert lp_distance(a, b, 2) == pytest.approx(euclidean(a, b))

    def test_p3_known_value(self):
        assert lp_distance([0, 0], [1, 1], 3) == pytest.approx(2 ** (1 / 3))

    def test_rejects_p_below_one(self):
        with pytest.raises(ParameterError, match="p >= 1"):
            LpDistance(0.5)

    def test_monotone_decreasing_in_p(self):
        a = np.zeros(4)
        b = np.array([1.0, 2.0, 0.5, 3.0])
        values = [lp_distance(a, b, p) for p in (1, 2, 3, 8)]
        assert all(x >= y - 1e-12 for x, y in zip(values, values[1:]))


class TestTriangleInequality:
    @pytest.mark.parametrize("metric", [ManhattanDistance(), EuclideanDistance(),
                                        ChebyshevDistance(), LpDistance(3)])
    def test_holds_on_random_triples(self, metric):
        rng = np.random.default_rng(3)
        for _ in range(25):
            a, b, c = rng.normal(size=(3, 6))
            assert metric(a, c) <= metric(a, b) + metric(b, c) + 1e-9
