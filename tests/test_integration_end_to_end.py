"""End-to-end integration tests across modules.

These exercise the full paper pipeline at small scale: generate a
workload with known structure, run PROCLUS and the baselines, evaluate
with the metrics stack, and check the relationships the paper claims.
"""

import numpy as np
import pytest

from repro import Proclus, proclus
from repro.baselines import Clique, FeatureSelectionClustering, KMeans
from repro.data import generate
from repro.metrics import (
    adjusted_rand_index,
    confusion_matrix,
    match_clusters,
    match_dimension_sets,
    segmental_silhouette,
)


@pytest.fixture(scope="module")
def workload():
    """Case-1-like workload at small scale with balanced clusters."""
    return generate(3000, 15, 4, cluster_dim_counts=[6, 6, 6, 6],
                    outlier_fraction=0.04, seed=70)


@pytest.fixture(scope="module")
def proclus_result(workload):
    return proclus(workload.points, 4, 6, seed=71, max_bad_tries=30)


class TestPaperPipeline:
    def test_proclus_recovers_partition(self, workload, proclus_result):
        ari = adjusted_rand_index(proclus_result.labels, workload.labels)
        assert ari > 0.75

    def test_dimension_recovery(self, workload, proclus_result):
        cm = confusion_matrix(proclus_result.labels, workload.labels)
        matching = match_clusters(cm)
        report = match_dimension_sets(
            proclus_result.dimensions, workload.cluster_dimensions, matching,
        )
        assert report.mean_jaccard > 0.7

    def test_confusion_rows_dominated(self, workload, proclus_result):
        cm = confusion_matrix(proclus_result.labels, workload.labels)
        dominances = [cm.dominance(cid) for cid in cm.output_ids]
        assert np.mean(dominances) > 0.7

    def test_internal_quality_positive(self, workload, proclus_result):
        s = segmental_silhouette(
            workload.points, proclus_result.labels, proclus_result.dimensions,
        )
        assert s > 0.2

    def test_proclus_beats_full_dimensional_kmeans(self, workload,
                                                   proclus_result):
        """The motivating claim: full-dimensional methods miss projected
        structure that PROCLUS finds."""
        km = KMeans(4, seed=1).fit(workload.points)
        km_ari = adjusted_rand_index(km.result_.labels, workload.labels)
        pc_ari = adjusted_rand_index(proclus_result.labels, workload.labels)
        assert pc_ari > km_ari

    def test_proclus_beats_feature_preselection(self, workload,
                                                proclus_result):
        fs = FeatureSelectionClustering(4, 6, seed=1).fit(workload.points)
        fs_ari = adjusted_rand_index(fs.labels_, workload.labels)
        pc_ari = adjusted_rand_index(proclus_result.labels, workload.labels)
        assert pc_ari > fs_ari

    def test_clique_output_is_not_a_partition(self, workload):
        """CLIQUE reports overlapping regions across subspaces."""
        clique = Clique(xi=10, tau=0.01, max_dimensionality=3).fit(
            workload.points)
        assert clique.result.average_overlap > 1.0

    def test_estimator_and_function_agree(self, workload):
        est = Proclus(k=4, l=6, seed=9, max_bad_tries=5).fit(workload.points)
        fn = proclus(workload.points, 4, 6, seed=9, max_bad_tries=5)
        assert np.array_equal(est.labels_, fn.labels)


class TestRobustness:
    def test_heavy_outliers(self):
        """30% outliers must not crash and clusters must still surface."""
        ds = generate(1500, 10, 3, cluster_dim_counts=[4, 4, 4],
                      outlier_fraction=0.3, seed=44)
        result = proclus(ds.points, 3, 4, seed=44, max_bad_tries=20)
        ari = adjusted_rand_index(result.labels, ds.labels)
        assert ari > 0.5

    def test_k_larger_than_natural_clusters(self):
        """Asking for more clusters than exist still yields a valid result."""
        ds = generate(800, 8, 2, cluster_dim_counts=[3, 3],
                      outlier_fraction=0.02, seed=45)
        result = proclus(ds.points, 4, 3, seed=45, max_bad_tries=5)
        assert set(np.unique(result.labels)) <= {-1, 0, 1, 2, 3}
        assert sum(len(d) for d in result.dimensions.values()) == 12

    def test_duplicate_points(self):
        """Many identical points (zero-variance localities) are handled."""
        rng = np.random.default_rng(3)
        X = np.vstack([
            np.tile([10.0, 10.0, 10.0, 10.0], (100, 1)),
            np.tile([90.0, 90.0, 90.0, 90.0], (100, 1)),
            rng.uniform(0, 100, size=(50, 4)),
        ])
        result = proclus(X, 2, 2, seed=6, max_bad_tries=5)
        assert result.labels.shape == (250,)

    def test_tiny_dataset(self):
        rng = np.random.default_rng(1)
        X = rng.uniform(0, 100, size=(25, 5))
        result = proclus(X, 2, 2, seed=1, sample_factor=5, pool_factor=2,
                         max_bad_tries=3)
        assert result.labels.shape == (25,)
