"""Unit tests for the refinement phase and outlier handling."""

import numpy as np
import pytest

from repro.core import refine_clusters
from repro.core.refinement import detect_outliers, spheres_of_influence
from repro.data.dataset import OUTLIER_LABEL
from repro.exceptions import ParameterError


class TestSpheresOfInfluence:
    def test_minimum_over_other_medoids(self):
        medoids = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 4.0]])
        dims = [(0, 1), (0, 1), (0, 1)]
        spheres = spheres_of_influence(medoids, dims)
        # medoid 0: nearest other is (0,4): segmental = (0+4)/2 = 2
        assert spheres[0] == pytest.approx(2.0)

    def test_uses_each_medoids_own_dims(self):
        medoids = np.array([[0.0, 0.0], [10.0, 2.0]])
        dims = [(0,), (1,)]
        spheres = spheres_of_influence(medoids, dims)
        assert spheres[0] == pytest.approx(10.0)  # |0-10| on dim 0
        assert spheres[1] == pytest.approx(2.0)   # |2-0| on dim 1

    def test_single_medoid_infinite(self):
        spheres = spheres_of_influence(np.array([[1.0, 2.0]]), [(0, 1)])
        assert np.isinf(spheres[0])

    def test_empty_dimension_set_rejected(self):
        with pytest.raises(ParameterError, match="empty dimension set"):
            spheres_of_influence(np.zeros((2, 3)), [(0,), ()])

    def test_mismatched_dim_sets_rejected(self):
        with pytest.raises(ParameterError, match="dimension sets"):
            spheres_of_influence(np.zeros((3, 2)), [(0,), (1,)])

    def test_bit_identical_to_per_medoid_loop(self):
        # oracle: the historical np.delete + point-kernel loop
        from repro.distance.segmental import segmental_distances_to_point

        rng = np.random.default_rng(23)
        for trial in range(60):
            k = int(rng.integers(1, 9))
            d = int(rng.integers(2, 40))
            medoids = rng.normal(size=(k, d)) * rng.uniform(0.1, 100)
            dims = [
                tuple(sorted(rng.choice(d, size=rng.integers(1, d + 1),
                                        replace=False).tolist()))
                for _ in range(k)
            ]
            got = spheres_of_influence(medoids, dims)
            ref = np.empty(k)
            for i in range(k):
                others = np.delete(np.arange(k), i)
                if others.size == 0:
                    ref[i] = np.inf
                    continue
                ref[i] = segmental_distances_to_point(
                    medoids[others], medoids[i], dims[i]).min()
            # exact equality: the matrix path must reduce with the same
            # summation order as the historical per-medoid gathers
            assert np.array_equal(got, ref), (trial, k, d)


class TestDetectOutliers:
    def test_outside_every_sphere(self):
        dist = np.array([[5.0, 7.0], [1.0, 9.0]])
        spheres = np.array([2.0, 3.0])
        mask = detect_outliers(dist, spheres)
        assert mask.tolist() == [True, False]

    def test_boundary_not_outlier(self):
        dist = np.array([[2.0, 9.0]])
        spheres = np.array([2.0, 3.0])
        assert detect_outliers(dist, spheres).tolist() == [False]

    def test_equality_on_every_sphere_not_outlier(self):
        # the comparison is strictly >: sitting exactly on every sphere
        # keeps the point assigned
        dist = np.array([[2.0, 3.0]])
        spheres = np.array([2.0, 3.0])
        assert detect_outliers(dist, spheres).tolist() == [False]
        nudged = np.nextafter(dist, np.inf)
        assert detect_outliers(nudged, spheres).tolist() == [True]

    def test_infinite_sphere_suppresses_outliers(self):
        dist = np.array([[1e12]])
        spheres = np.array([np.inf])
        assert detect_outliers(dist, spheres).tolist() == [False]


class TestRefineClusters:
    def test_recovers_planted_structure(self, two_cluster_points):
        X = two_cluster_points
        rough = np.repeat([0, 1], 40)
        out = refine_clusters(X, rough, np.array([5, 45]), l=2)
        assert out.dim_sets[0] == (0, 1)
        assert out.dim_sets[1] == (2, 3)
        core0 = out.labels[:40]
        core1 = out.labels[40:]
        assert (core0 == 0).mean() > 0.9
        assert (core1 == 1).mean() > 0.9

    def test_far_point_flagged_as_outlier(self, two_cluster_points):
        X = np.vstack([two_cluster_points,
                       [[500.0, 500.0, 500.0, 500.0]]])
        rough = np.append(np.repeat([0, 1], 40), 0)
        out = refine_clusters(X, rough, np.array([5, 45]), l=2)
        assert out.labels[-1] == OUTLIER_LABEL
        assert out.n_outliers >= 1

    def test_outlier_handling_can_be_disabled(self, two_cluster_points):
        X = np.vstack([two_cluster_points,
                       [[500.0, 500.0, 500.0, 500.0]]])
        rough = np.append(np.repeat([0, 1], 40), 0)
        out = refine_clusters(X, rough, np.array([5, 45]), l=2,
                              handle_outliers=False)
        assert out.n_outliers == 0
        assert (out.labels >= 0).all()

    def test_empty_cluster_uses_fallback_dims(self, two_cluster_points):
        X = two_cluster_points
        rough = np.zeros(80, dtype=int)  # cluster 1 got no points
        out = refine_clusters(X, rough, np.array([5, 45]), l=2,
                              fallback_dims=[(0, 1), (2, 3)])
        assert out.dim_sets[1] == (2, 3)

    def test_spheres_reported(self, two_cluster_points):
        out = refine_clusters(two_cluster_points, np.repeat([0, 1], 40),
                              np.array([5, 45]), l=2)
        assert out.spheres.shape == (2,)
        assert (out.spheres > 0).all()

    def test_single_cluster_has_no_outliers(self, two_cluster_points):
        # k=1: no other medoid, so the sphere of influence is infinite
        # and no point can ever sit outside it
        X = np.vstack([two_cluster_points,
                       [[500.0, 500.0, 500.0, 500.0]]])
        rough = np.zeros(81, dtype=int)
        out = refine_clusters(X, rough, np.array([5]), l=2)
        assert np.isinf(out.spheres).all()
        assert out.n_outliers == 0
        assert (out.labels == 0).all()
