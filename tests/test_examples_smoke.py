"""Smoke tests: the shipped examples must run end to end.

Each fast example is executed in-process (``runpy``) with stdout
captured; the slow ones (full CLIQUE comparison, scaling study) are
exercised through their underlying library calls elsewhere and excluded
here to keep the suite quick.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    ("quickstart.py", "adjusted Rand index"),
    ("feature_selection_failure.py", "PROCLUS"),
    ("oriented_subspaces.py", "ORCLUS"),
    ("sensor_anomalies.py", "anomaly detection"),
]


@pytest.mark.parametrize("script,expected", FAST_EXAMPLES,
                         ids=[s for s, _ in FAST_EXAMPLES])
def test_example_runs(script, expected, capsys, monkeypatch):
    path = EXAMPLES / script
    assert path.exists(), f"missing example {script}"
    monkeypatch.setattr(sys, "argv", [str(path)])
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert expected in out


def test_all_examples_present():
    """The repository ships at least the documented example set."""
    names = {p.name for p in EXAMPLES.glob("*.py")}
    required = {
        "quickstart.py",
        "collaborative_filtering.py",
        "feature_selection_failure.py",
        "clique_comparison.py",
        "scaling_study.py",
        "parameter_tuning.py",
        "sensor_anomalies.py",
        "oriented_subspaces.py",
    }
    assert required <= names


def test_examples_have_docstrings():
    import ast
    for path in EXAMPLES.glob("*.py"):
        tree = ast.parse(path.read_text())
        assert ast.get_docstring(tree), f"{path.name} lacks a module docstring"
