"""Unit tests for batch distance kernels and the metric registry."""

import numpy as np
import pytest

from repro.distance import (
    available_metrics,
    cross_distances,
    distances_to_point,
    get_metric,
    pairwise_distances,
    per_dimension_average_distance,
    register_metric,
)
from repro.distance.base import Metric
from repro.exceptions import ParameterError


class TestRegistry:
    def test_lookup_by_name_and_alias(self):
        assert get_metric("manhattan") is get_metric("l1")
        assert get_metric("euclidean") is get_metric("l2")
        assert get_metric("chebyshev") is get_metric("linf")

    def test_case_insensitive(self):
        assert get_metric("Manhattan") is get_metric("manhattan")

    def test_instance_passthrough(self):
        m = get_metric("euclidean")
        assert get_metric(m) is m

    def test_unknown_name(self):
        with pytest.raises(ParameterError, match="unknown metric"):
            get_metric("hamming")

    def test_invalid_type(self):
        with pytest.raises(ParameterError, match="name or a Metric"):
            get_metric(42)

    def test_register_custom(self):
        class Half(Metric):
            name = "half-manhattan"

            def pairwise_to_point(self, X, p):
                return np.abs(X - p).sum(axis=1) / 2

        register_metric(Half())
        assert get_metric("half-manhattan")([0, 0], [2, 2]) == 2.0
        assert "half-manhattan" in available_metrics()

    def test_register_requires_name(self):
        class NoName(Metric):
            def pairwise_to_point(self, X, p):
                return np.zeros(X.shape[0])

        with pytest.raises(ParameterError, match="non-empty"):
            register_metric(NoName())


class TestKernels:
    def test_distances_to_point(self):
        X = np.array([[0.0, 0.0], [3.0, 4.0]])
        d = distances_to_point(X, [0.0, 0.0], "euclidean")
        assert np.allclose(d, [0.0, 5.0])

    def test_cross_shape_and_values(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(7, 3))
        A = rng.normal(size=(2, 3))
        m = cross_distances(X, A, "manhattan")
        assert m.shape == (7, 2)
        assert m[4, 1] == pytest.approx(np.abs(X[4] - A[1]).sum())

    def test_pairwise_symmetric(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(6, 3))
        m = pairwise_distances(X, "euclidean")
        assert np.allclose(m, m.T)
        assert np.allclose(np.diag(m), 0.0)

    @pytest.mark.parametrize("metric", ["euclidean", "manhattan"])
    def test_pairwise_triangular_matches_naive(self, metric):
        # pairwise_distances computes the lower triangle and mirrors;
        # |x-y| and (x-y)^2 are symmetric per dimension, so it must
        # equal the full N x N cross computation bit for bit
        rng = np.random.default_rng(8)
        X = rng.normal(size=(37, 5))
        naive = cross_distances(X, X, metric)
        assert np.array_equal(pairwise_distances(X, metric), naive)

    def test_pairwise_chunked_matches_naive(self):
        rng = np.random.default_rng(9)
        X = rng.normal(size=(200, 4))
        naive = cross_distances(X, X, "euclidean")
        chunked = pairwise_distances(X, "euclidean",
                                     memory_budget_bytes=1024)
        assert np.array_equal(chunked, naive)

    def test_single_anchor_promoted(self):
        X = np.zeros((3, 2))
        m = cross_distances(X, np.array([1.0, 1.0]), "manhattan")
        assert m.shape == (3, 1)
        assert np.allclose(m, 2.0)


class TestPerDimensionAverage:
    def test_known_values(self):
        X = np.array([[0.0, 10.0], [4.0, 10.0]])
        p = np.array([2.0, 10.0])
        avg = per_dimension_average_distance(X, p)
        assert np.allclose(avg, [2.0, 0.0])

    def test_weighted(self):
        X = np.array([[0.0], [10.0]])
        p = np.array([0.0])
        avg = per_dimension_average_distance(X, p, weights=np.array([3.0, 1.0]))
        assert avg[0] == pytest.approx(2.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            per_dimension_average_distance(np.empty((0, 3)), np.zeros(3))
