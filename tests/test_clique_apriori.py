"""Unit tests for dense-unit discovery (the apriori bottom-up pass)."""

import numpy as np
import pytest

from repro.baselines.clique import Grid, Unit, find_dense_units
from repro.baselines.clique.apriori import (
    count_units,
    density_threshold,
    generate_candidates,
    units_by_subspace,
)
from repro.exceptions import ParameterError


class TestDensityThreshold:
    def test_ceil(self):
        assert density_threshold(1000, 0.005) == 5
        assert density_threshold(999, 0.005) == 5

    def test_at_least_one(self):
        assert density_threshold(10, 0.001) == 1

    def test_invalid_tau(self):
        with pytest.raises(ParameterError):
            density_threshold(100, 0.0)
        with pytest.raises(ParameterError):
            density_threshold(100, 1.0)


class TestGenerateCandidates:
    def test_join_on_shared_prefix(self):
        dense = [
            Unit(dims=(0,), intervals=(1,)),
            Unit(dims=(1,), intervals=(2,)),
        ]
        cands = generate_candidates(dense)
        assert cands == [Unit(dims=(0, 1), intervals=(1, 2))]

    def test_same_dim_not_joined(self):
        dense = [
            Unit(dims=(0,), intervals=(1,)),
            Unit(dims=(0,), intervals=(2,)),
        ]
        assert generate_candidates(dense) == []

    def test_prune_candidate_with_nondense_face(self):
        # 3-dim candidate requires all three 2-dim faces dense
        dense = [
            Unit(dims=(0, 1), intervals=(1, 1)),
            Unit(dims=(0, 2), intervals=(1, 1)),
            # face (1, 2) missing
        ]
        assert generate_candidates(dense) == []

    def test_accepts_when_all_faces_dense(self):
        dense = [
            Unit(dims=(0, 1), intervals=(1, 1)),
            Unit(dims=(0, 2), intervals=(1, 1)),
            Unit(dims=(1, 2), intervals=(1, 1)),
        ]
        cands = generate_candidates(dense)
        assert cands == [Unit(dims=(0, 1, 2), intervals=(1, 1, 1))]

    def test_empty_input(self):
        assert generate_candidates([]) == []


class TestCountUnits:
    def test_counts_match_manual(self):
        cells = np.array([[0, 0], [0, 0], [0, 1], [1, 1]])
        units = [
            Unit(dims=(0, 1), intervals=(0, 0)),
            Unit(dims=(0, 1), intervals=(0, 1)),
            Unit(dims=(0, 1), intervals=(1, 0)),
        ]
        counts = count_units(cells, units, xi=10)
        assert counts[units[0]] == 2
        assert counts[units[1]] == 1
        assert counts[units[2]] == 0

    def test_grouped_by_subspace(self):
        units = [Unit(dims=(0,), intervals=(0,)), Unit(dims=(1,), intervals=(0,))]
        grouped = units_by_subspace(units)
        assert set(grouped) == {(0,), (1,)}


class TestFindDenseUnits:
    def test_single_dense_block(self):
        """All points in one cell: the full chain of units is discovered."""
        X = np.tile([5.0, 15.0, 25.0], (50, 1))
        cells = Grid(xi=10, bounds=(np.zeros(3), np.full(3, 100.0))).cell_indices(X)
        dense = find_dense_units(cells, xi=10, tau=0.5)
        # every subspace of the occupied cell is dense: 3 + 3 + 1 units
        assert len(dense) == 7
        assert all(c == 50 for c in dense.values())

    def test_monotonicity_invariant(self):
        """Every face of a dense unit is itself dense (apriori property)."""
        rng = np.random.default_rng(0)
        X = np.vstack([
            rng.normal([20, 20, 50, 50], 2.0, size=(150, 4)),
            rng.uniform(0, 100, size=(100, 4)),
        ])
        cells = Grid(xi=10).fit_transform(X)
        dense = find_dense_units(cells, xi=10, tau=0.05)
        for u in dense:
            for face in u.faces():
                assert face in dense

    def test_counts_at_least_threshold(self):
        rng = np.random.default_rng(1)
        X = rng.uniform(0, 100, size=(500, 3))
        cells = Grid(xi=5).fit_transform(X)
        dense = find_dense_units(cells, xi=5, tau=0.02)
        threshold = density_threshold(500, 0.02)
        assert all(c >= threshold for c in dense.values())

    def test_max_dimensionality_cap(self):
        X = np.tile([5.0, 15.0, 25.0], (50, 1))
        cells = Grid(xi=10, bounds=(np.zeros(3), np.full(3, 100.0))).cell_indices(X)
        dense = find_dense_units(cells, xi=10, tau=0.5, max_dimensionality=2)
        assert max(u.dimensionality for u in dense) == 2

    def test_high_threshold_nothing_dense(self):
        rng = np.random.default_rng(2)
        X = rng.uniform(0, 100, size=(200, 2))
        cells = Grid(xi=10).fit_transform(X)
        dense = find_dense_units(cells, xi=10, tau=0.9)
        assert dense == {}

    def test_level_hook_filters_next_level(self):
        X = np.tile([5.0, 15.0, 25.0], (50, 1))
        cells = Grid(xi=10, bounds=(np.zeros(3), np.full(3, 100.0))).cell_indices(X)

        def hook(level, units, counts):
            # keep only subspaces containing dimension 0
            return [u for u in units if 0 in u.dims]

        dense = find_dense_units(cells, xi=10, tau=0.5, level_hook=hook)
        for u in dense:
            if u.dimensionality >= 2:
                assert 0 in u.dims
