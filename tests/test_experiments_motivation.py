"""Tests for the Figure-1 motivation experiment."""

import numpy as np
import pytest

from repro.experiments import figure1_dataset, run_motivation


class TestFigure1Dataset:
    def test_shapes(self):
        X, y = figure1_dataset(n_per_cluster=100, n_noise_dims=2, seed=1)
        assert X.shape == (200, 5)
        assert set(np.unique(y)) == {0, 1}

    def test_planted_geometry(self):
        X, y = figure1_dataset(n_per_cluster=400, n_noise_dims=2, seed=1)
        a, b = X[y == 0], X[y == 1]
        # cluster 0 tight in x and y, spread in z
        assert a[:, 0].std() < 3 and a[:, 1].std() < 3
        assert a[:, 2].std() > 20
        # cluster 1 tight in x and z, spread in y
        assert b[:, 0].std() < 3 and b[:, 2].std() < 3
        assert b[:, 1].std() > 20

    def test_reproducible(self):
        X1, y1 = figure1_dataset(seed=7)
        X2, y2 = figure1_dataset(seed=7)
        assert np.array_equal(X1, X2)
        assert np.array_equal(y1, y2)


class TestRunMotivation:
    @pytest.fixture(scope="class")
    def report(self):
        return run_motivation(n_points=800, seed=3)

    def test_all_methods_scored(self, report):
        assert set(report.scores) == {
            "PROCLUS", "k-means (full space)",
            "feature selection + k-means", "DBSCAN (full space)",
        }

    def test_proclus_wins(self, report):
        best_other = max(v for k, v in report.scores.items()
                         if k != "PROCLUS")
        assert report.scores["PROCLUS"] > best_other

    def test_dimension_evidence_recorded(self, report):
        assert len(report.proclus_dimensions) == 2
        assert len(report.selected_dims) == 2

    def test_text(self, report):
        text = report.to_text()
        assert "Figure 1 motivation" in text
        assert "PROCLUS" in text

    def test_registered(self):
        from repro.experiments import get_experiment
        assert get_experiment("fig1-motivation") is not None
