"""Property-based tests for the full-dimensional baselines."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.baselines import dbscan, kmeans
from repro.baselines.kmedoids import pam


@st.composite
def point_sets(draw):
    n = draw(st.integers(min_value=8, max_value=80))
    d = draw(st.integers(min_value=1, max_value=5))
    seed = draw(st.integers(min_value=0, max_value=10**6))
    rng = np.random.default_rng(seed)
    return rng.uniform(-10, 10, size=(n, d)), seed


class TestKMeansProperties:
    @given(point_sets(), st.integers(min_value=1, max_value=4))
    @settings(max_examples=25, deadline=None)
    def test_labels_valid_and_inertia_nonnegative(self, ps, k):
        X, seed = ps
        k = min(k, X.shape[0])
        result = kmeans(X, k, n_init=1, max_iter=20, seed=seed)
        assert result.labels.shape == (X.shape[0],)
        assert set(np.unique(result.labels)) <= set(range(k))
        assert result.inertia >= 0.0

    @given(point_sets())
    @settings(max_examples=20, deadline=None)
    def test_single_cluster_centroid_is_mean(self, ps):
        X, seed = ps
        result = kmeans(X, 1, n_init=1, seed=seed)
        assert np.allclose(result.centroids[0], X.mean(axis=0), atol=1e-6)

    @given(point_sets())
    @settings(max_examples=20, deadline=None)
    def test_inertia_monotone_in_k(self, ps):
        """Best-of-restarts inertia cannot increase when k grows."""
        X, seed = ps
        if X.shape[0] < 3:
            return
        i1 = kmeans(X, 1, n_init=2, seed=seed).inertia
        i2 = kmeans(X, min(3, X.shape[0]), n_init=3, seed=seed).inertia
        assert i2 <= i1 + 1e-6


class TestKMedoidsProperties:
    @given(point_sets(), st.integers(min_value=1, max_value=3))
    @settings(max_examples=15, deadline=None)
    def test_pam_contract(self, ps, k):
        X, seed = ps
        k = min(k, X.shape[0])
        result = pam(X, k)
        assert len(set(result.medoid_indices.tolist())) == k
        # every point assigned to its closest medoid
        from repro.distance.matrix import cross_distances
        dist = cross_distances(X, result.medoids, "manhattan")
        assert np.array_equal(result.labels, np.argmin(dist, axis=1))

    @given(point_sets())
    @settings(max_examples=10, deadline=None)
    def test_pam_is_single_swap_locally_optimal(self, ps):
        """PAM's SWAP terminates only when no single medoid/non-medoid
        exchange lowers the cost — the algorithm's actual contract.
        (CLARANS can still beat PAM from a different start; both are
        local minima of the same neighbourhood structure.)"""
        X, seed = ps
        if X.shape[0] < 6:
            return
        from repro.distance.matrix import cross_distances
        result = pam(X, 2)
        full = cross_distances(X, X, "manhattan")
        medoids = result.medoid_indices.tolist()
        base_cost = full[:, medoids].min(axis=1).sum()
        for pos in range(2):
            others = [m for i, m in enumerate(medoids) if i != pos]
            for cand in range(X.shape[0]):
                if cand in medoids:
                    continue
                trial = others + [cand]
                trial_cost = full[:, trial].min(axis=1).sum()
                assert trial_cost >= base_cost - 1e-9


class TestDbscanProperties:
    @given(point_sets(), st.sampled_from([0.5, 2.0, 8.0]))
    @settings(max_examples=25, deadline=None)
    def test_labels_contiguous_and_core_points_clustered(self, ps, eps):
        X, seed = ps
        result = dbscan(X, eps=eps, min_pts=3)
        ids = sorted(set(result.labels.tolist()) - {-1})
        assert ids == list(range(result.n_clusters))
        # core points always belong to a cluster
        assert (result.labels[result.core_mask] >= 0).all()

    @given(point_sets())
    @settings(max_examples=20, deadline=None)
    def test_monotone_in_eps(self, ps):
        """A larger radius can only reduce (or keep) the noise count."""
        X, seed = ps
        small = dbscan(X, eps=0.5, min_pts=3)
        large = dbscan(X, eps=5.0, min_pts=3)
        assert large.n_noise <= small.n_noise
