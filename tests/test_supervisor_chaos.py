"""Chaos suite for the fault-tolerant run supervisor (``-m chaos``).

Process-level faults are injected through the module-level test hooks in
:mod:`repro.robustness.supervisor` (``_TEST_FAULT_SPEC`` ships a
:class:`~repro.robustness.faults.ProcessFaultSpec` to every worker as an
ordinary pickled argument, so injection works under any multiprocessing
start method; ``_TEST_INTERRUPT_AFTER`` simulates a SIGINT arriving
after N computed restarts).  The contract under test everywhere:

* no ``BrokenProcessPool`` (or any untyped error) ever escapes
  ``proclus()``;
* whatever faults fire, the returned winner is **bit-identical** to the
  fault-free serial baseline — retries replay identical seed streams;
* an interrupted checkpointed run plus ``resume=True`` is bit-identical
  to an uninterrupted run.
"""

import os
import signal
import threading

import numpy as np
import pytest

from repro import proclus
from repro.data import generate
from repro.robustness import supervisor
from repro.robustness.faults import ProcessFaultSpec

pytestmark = [
    pytest.mark.chaos,
    pytest.mark.filterwarnings(
        "ignore::repro.exceptions.SanitizationWarning"),
]

FAST = dict(max_bad_tries=3, max_iterations=40, keep_history=False)
RESTARTS = 4


@pytest.fixture(scope="module")
def workload():
    return generate(300, 8, 3, cluster_dim_counts=[3, 3, 3],
                    outlier_fraction=0.05, seed=31)


@pytest.fixture(scope="module")
def baseline(workload):
    """The fault-free serial run every scenario must reproduce."""
    return proclus(workload.points, 3, 3, restarts=RESTARTS, seed=11, **FAST)


@pytest.fixture
def inject():
    """Set a supervisor test hook for one test, restoring it afterwards."""
    def _set(fault=None, interrupt_after=None):
        supervisor._TEST_FAULT_SPEC = fault
        supervisor._TEST_INTERRUPT_AFTER = interrupt_after

    yield _set
    supervisor._TEST_FAULT_SPEC = None
    supervisor._TEST_INTERRUPT_AFTER = None


def _fingerprint(result):
    return (
        result.labels.tobytes(),
        result.medoid_indices.tobytes(),
        tuple(sorted(result.dimensions.items())),
        result.objective,
        result.iterative_objective,
        result.terminated_by,
    )


# ----------------------------------------------------------------------
# Crash recovery
# ----------------------------------------------------------------------

def test_worker_killed_mid_fanout_is_retried(workload, baseline, inject):
    """Acceptance: one killed worker, bit-identical winner, no escape."""
    inject(fault=ProcessFaultSpec(kind="crash", index=1, times=1))
    result = proclus(workload.points, 3, 3, restarts=RESTARTS, seed=11,
                     n_jobs=2, **FAST)
    assert _fingerprint(result) == _fingerprint(baseline)
    ft = result.fault_tolerance
    assert ft["retries"] >= 1 and ft["respawns"] >= 1


def test_persistent_crash_degrades_to_serial_salvage(workload, baseline,
                                                     inject):
    """A worker that dies on every attempt exhausts the retry budget;
    the stubborn restart runs in-process instead of raising."""
    inject(fault=ProcessFaultSpec(kind="crash", index=1, times=99))
    result = proclus(workload.points, 3, 3, restarts=RESTARTS, seed=11,
                     n_jobs=2, max_retries=1, **FAST)
    assert _fingerprint(result) == _fingerprint(baseline)
    assert result.fault_tolerance["salvaged_serial"] >= 1


def test_max_retries_zero_goes_straight_to_salvage(workload, baseline,
                                                   inject):
    inject(fault=ProcessFaultSpec(kind="crash", index=0, times=99))
    result = proclus(workload.points, 3, 3, restarts=RESTARTS, seed=11,
                     n_jobs=2, max_retries=0, **FAST)
    assert _fingerprint(result) == _fingerprint(baseline)
    assert result.fault_tolerance["retries"] == 0
    assert result.fault_tolerance["salvaged_serial"] >= 1


# ----------------------------------------------------------------------
# Hang detection
# ----------------------------------------------------------------------

def test_hung_worker_is_replaced_within_timeout(workload, baseline, inject):
    inject(fault=ProcessFaultSpec(kind="hang", index=0, times=1, hang_s=60))
    result = proclus(workload.points, 3, 3, restarts=RESTARTS, seed=11,
                     n_jobs=2, restart_timeout_s=1.0, **FAST)
    assert _fingerprint(result) == _fingerprint(baseline)
    ft = result.fault_tolerance
    assert ft["timeouts"] >= 1 and ft["respawns"] >= 1


# ----------------------------------------------------------------------
# Corrupt worker payloads
# ----------------------------------------------------------------------

def test_corrupt_payload_is_rejected_and_retried(workload, baseline, inject):
    inject(fault=ProcessFaultSpec(kind="corrupt", index=2, times=1))
    result = proclus(workload.points, 3, 3, restarts=RESTARTS, seed=11,
                     n_jobs=2, **FAST)
    assert _fingerprint(result) == _fingerprint(baseline)
    assert result.fault_tolerance["corrupt_payloads"] == 1


# ----------------------------------------------------------------------
# Checkpoint / resume
# ----------------------------------------------------------------------

def test_corrupt_checkpoint_file_is_recomputed(tmp_path, workload, baseline):
    """Torn per-restart payloads are discarded, recomputed, and the
    resumed run still matches the uninterrupted baseline bit for bit."""
    ck = tmp_path / "ck"
    proclus(workload.points, 3, 3, restarts=RESTARTS, seed=11,
            checkpoint_dir=str(ck), **FAST)
    (ck / "restart_00001.npz").write_bytes(b"\x00garbage")

    resumed = proclus(workload.points, 3, 3, restarts=RESTARTS, seed=11,
                      checkpoint_dir=str(ck), resume=True, **FAST)
    assert _fingerprint(resumed) == _fingerprint(baseline)
    ft = resumed.fault_tolerance
    assert ft["checkpoint_discarded"] == 1
    assert ft["resumed_from"] == RESTARTS - 1


@pytest.mark.parametrize("seed", [11, 77])
@pytest.mark.parametrize("interrupt_at", [1, 2, 3])
def test_interrupt_then_resume_is_bit_identical(tmp_path, workload, inject,
                                                seed, interrupt_at):
    """Property (acceptance): interrupt after the j-th restart + resume
    equals the uninterrupted serial baseline, for any j and seed."""
    uninterrupted = proclus(workload.points, 3, 3, restarts=RESTARTS,
                            seed=seed, **FAST)
    ck = tmp_path / f"ck-{seed}-{interrupt_at}"

    inject(interrupt_after=interrupt_at)
    partial = proclus(workload.points, 3, 3, restarts=RESTARTS, seed=seed,
                      checkpoint_dir=str(ck), **FAST)
    assert partial.terminated_by == "signal"
    assert partial.fault_tolerance["terminated_by_signal"] is True
    assert partial.parallelism["restarts_completed"] == interrupt_at

    inject()  # clear the hook before the resumed run
    resumed = proclus(workload.points, 3, 3, restarts=RESTARTS, seed=seed,
                      checkpoint_dir=str(ck), resume=True, **FAST)
    assert _fingerprint(resumed) == _fingerprint(uninterrupted)
    assert resumed.fault_tolerance["resumed_from"] == interrupt_at


def test_parallel_interrupt_then_resume(tmp_path, workload, baseline, inject):
    """The pooled supervision loop honours the same interrupt contract."""
    ck = tmp_path / "ck-par"
    inject(interrupt_after=2)
    partial = proclus(workload.points, 3, 3, restarts=RESTARTS, seed=11,
                      n_jobs=2, checkpoint_dir=str(ck), **FAST)
    assert partial.terminated_by == "signal"
    assert 0 < partial.parallelism["restarts_completed"] < RESTARTS

    inject()
    resumed = proclus(workload.points, 3, 3, restarts=RESTARTS, seed=11,
                      n_jobs=2, checkpoint_dir=str(ck), resume=True, **FAST)
    assert _fingerprint(resumed) == _fingerprint(baseline)


def test_real_sigint_returns_best_so_far(tmp_path, workload, baseline):
    """A genuine SIGINT mid-run flips terminated_by to "signal" and the
    checkpoint supports a bit-identical resume.

    The timing of the signal is inherently racy, so the test accepts
    either outcome — interrupted or completed — but whichever happens
    must be well-formed and resumable.
    """
    ck = tmp_path / "ck-sig"
    # Absorb a late-arriving SIGINT (fired after proclus returned) so it
    # cannot take down the test process: the supervisor's one-shot guard
    # chains back to this harmless handler, not to the default raiser.
    previous = signal.signal(signal.SIGINT, lambda s, f: None)
    timer = threading.Timer(0.35, os.kill, args=(os.getpid(), signal.SIGINT))
    timer.start()
    try:
        result = proclus(workload.points, 3, 3, restarts=RESTARTS, seed=11,
                         checkpoint_dir=str(ck), **FAST)
    finally:
        timer.cancel()
        signal.signal(signal.SIGINT, previous)

    assert result.labels.shape == (workload.points.shape[0],)
    assert np.isfinite(result.objective)
    if result.terminated_by == "signal":
        assert result.fault_tolerance["terminated_by_signal"] is True
        resumed = proclus(workload.points, 3, 3, restarts=RESTARTS, seed=11,
                          checkpoint_dir=str(ck), resume=True, **FAST)
        assert _fingerprint(resumed) == _fingerprint(baseline)
    else:
        assert _fingerprint(result) == _fingerprint(baseline)


# ----------------------------------------------------------------------
# CLI exit codes
# ----------------------------------------------------------------------

def test_cli_resume_mismatch_exits_4(tmp_path, workload, capsys):
    from repro.cli import main
    from repro.data import Dataset
    from repro.data.io import save_csv

    csv = tmp_path / "data.csv"
    save_csv(Dataset(points=workload.points), csv)
    ck = tmp_path / "ck-cli"
    args = ["cluster", str(csv), "-k", "3", "-l", "3", "--restarts", "2",
            "--seed", "1", "--checkpoint-dir", str(ck)]
    assert main(args) == 0
    # different seed -> different run -> CheckpointError -> exit code 4
    bad = ["cluster", str(csv), "-k", "3", "-l", "3", "--restarts", "2",
           "--seed", "2", "--checkpoint-dir", str(ck), "--resume"]
    assert main(bad) == 4
    assert "different run" in capsys.readouterr().err


def test_cli_signal_terminated_run_exits_130(tmp_path, workload, inject,
                                             capsys):
    from repro.cli import main
    from repro.data import Dataset
    from repro.data.io import save_csv

    csv = tmp_path / "data.csv"
    save_csv(Dataset(points=workload.points), csv)
    ck = tmp_path / "ck-130"
    inject(interrupt_after=1)
    code = main(["cluster", str(csv), "-k", "3", "-l", "3",
                 "--restarts", "3", "--seed", "1",
                 "--checkpoint-dir", str(ck)])
    assert code == 130
    assert "stop=signal" in capsys.readouterr().out
