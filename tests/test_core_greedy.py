"""Unit tests for the Gonzalez greedy farthest-point technique."""

import numpy as np
import pytest

from repro.core import greedy_select
from repro.exceptions import ParameterError


def well_separated_clusters():
    """Three tight clusters far apart plus their generator."""
    rng = np.random.default_rng(0)
    centers = np.array([[0.0, 0.0], [100.0, 0.0], [0.0, 100.0]])
    pts = np.vstack([
        c + rng.normal(0, 0.5, size=(30, 2)) for c in centers
    ])
    labels = np.repeat([0, 1, 2], 30)
    return pts, labels


class TestGreedySelect:
    def test_selects_requested_count(self):
        pts, _ = well_separated_clusters()
        idx = greedy_select(pts, 5, seed=1)
        assert idx.shape == (5,)
        assert len(set(idx.tolist())) == 5

    def test_pierces_well_separated_clusters(self):
        pts, labels = well_separated_clusters()
        idx = greedy_select(pts, 3, seed=1)
        assert set(labels[idx]) == {0, 1, 2}

    def test_first_pick_respected(self):
        pts, _ = well_separated_clusters()
        idx = greedy_select(pts, 3, first=7)
        assert idx[0] == 7

    def test_deterministic_given_seed(self):
        pts, _ = well_separated_clusters()
        a = greedy_select(pts, 4, seed=5)
        b = greedy_select(pts, 4, seed=5)
        assert np.array_equal(a, b)

    def test_second_pick_is_farthest_from_first(self):
        pts = np.array([[0.0], [1.0], [10.0], [4.0]])
        idx = greedy_select(pts, 2, first=0)
        assert idx[1] == 2

    def test_each_pick_maximises_min_distance(self):
        rng = np.random.default_rng(3)
        pts = rng.uniform(0, 100, size=(50, 3))
        idx = greedy_select(pts, 6, first=0, metric="euclidean")
        chosen = list(idx)
        for step in range(1, 6):
            prev = pts[chosen[:step]]
            dists = np.linalg.norm(pts[:, None, :] - prev[None], axis=2).min(axis=1)
            dists[chosen[:step]] = -np.inf
            assert dists[chosen[step]] == pytest.approx(dists.max())

    def test_manhattan_metric_changes_geometry(self):
        pts = np.array([[0.0, 0.0], [3.0, 3.0], [4.0, 0.0]])
        # from (0,0): manhattan farthest is (3,3)=6; euclidean is (3,3)~4.24 > 4
        idx_m = greedy_select(pts, 2, first=0, metric="manhattan")
        assert idx_m[1] == 1

    def test_select_all(self):
        pts, _ = well_separated_clusters()
        idx = greedy_select(pts, len(pts), seed=0)
        assert sorted(idx.tolist()) == list(range(len(pts)))

    def test_too_many_rejected(self):
        pts = np.zeros((3, 2))
        with pytest.raises(ParameterError, match="cannot select"):
            greedy_select(pts, 4)

    def test_bad_first_rejected(self):
        pts = np.zeros((3, 2))
        with pytest.raises(ParameterError, match="first"):
            greedy_select(pts, 2, first=3)
