"""The serving stack under normal operation: unit + integration tests.

Chaos scenarios (injected kernel faults, slow-loris clients, signal
drains) live in ``test_serve_chaos.py``; this file covers the breaker
and admission state machines in isolation (injected clocks, no sleeps)
and the HTTP contract of a healthy server.
"""

from __future__ import annotations

import http.client
import json
import threading
from typing import Any, Dict, Optional, Tuple

import numpy as np
import pytest

from repro.core.proclus import proclus
from repro.core.serialization import save_result
from repro.exceptions import ParameterError, ServeError
from repro.obs import Tracer, use_tracer, validate_trace_lines
from repro.serve import (BREAKER_CLOSED, BREAKER_HALF_OPEN, BREAKER_OPEN,
                         AdmissionController, CircuitBreaker, PredictClient,
                         ProclusServer, RetryPolicy, ServerConfig)


# ---------------------------------------------------------------------------
# circuit breaker (injected clock: deterministic, sleep-free)
# ---------------------------------------------------------------------------

class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now


class TestCircuitBreaker:
    def make(self, threshold=3, reset=10.0):
        clock = FakeClock()
        return CircuitBreaker(failure_threshold=threshold,
                              reset_after_s=reset, clock=clock), clock

    def test_starts_closed_and_allows(self):
        breaker, _ = self.make()
        assert breaker.state == BREAKER_CLOSED
        assert breaker.allow()

    def test_opens_after_consecutive_failures(self):
        breaker, _ = self.make(threshold=3)
        for _ in range(2):
            breaker.record_failure()
            assert breaker.state == BREAKER_CLOSED
        breaker.record_failure()
        assert breaker.state == BREAKER_OPEN
        assert not breaker.allow()

    def test_success_resets_the_count(self):
        breaker, _ = self.make(threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == BREAKER_CLOSED

    def test_half_opens_on_the_monotonic_timer(self):
        breaker, clock = self.make(threshold=1, reset=10.0)
        breaker.record_failure()
        assert breaker.state == BREAKER_OPEN
        clock.now += 9.9
        assert breaker.state == BREAKER_OPEN
        clock.now += 0.2
        assert breaker.state == BREAKER_HALF_OPEN

    def test_half_open_grants_exactly_one_probe(self):
        breaker, clock = self.make(threshold=1, reset=1.0)
        breaker.record_failure()
        clock.now += 2.0
        assert breaker.allow()
        assert not breaker.allow()

    def test_probe_success_closes(self):
        breaker, clock = self.make(threshold=1, reset=1.0)
        breaker.record_failure()
        clock.now += 2.0
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == BREAKER_CLOSED
        assert breaker.allow()

    def test_probe_failure_reopens(self):
        breaker, clock = self.make(threshold=1, reset=1.0)
        breaker.record_failure()
        clock.now += 2.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == BREAKER_OPEN
        assert breaker.retry_after_s() == pytest.approx(1.0)

    def test_abandoned_probe_frees_the_slot(self):
        # a probe that ends in a typed error (no kernel verdict) must
        # release the half-open slot, or the circuit wedges forever
        breaker, clock = self.make(threshold=1, reset=1.0)
        breaker.record_failure()
        clock.now += 2.0
        assert breaker.allow()
        assert not breaker.allow()
        breaker.abandon_probe()
        assert breaker.state == BREAKER_HALF_OPEN  # state unchanged
        assert breaker.allow()  # the probe is available again
        breaker.record_success()
        assert breaker.state == BREAKER_CLOSED

    def test_abandon_probe_outside_half_open_is_a_no_op(self):
        breaker, _ = self.make()
        breaker.abandon_probe()
        assert breaker.state == BREAKER_CLOSED
        assert breaker.allow()

    def test_retry_after_counts_down(self):
        breaker, clock = self.make(threshold=1, reset=10.0)
        breaker.record_failure()
        clock.now += 4.0
        assert breaker.retry_after_s() == pytest.approx(6.0)

    def test_snapshot_is_json_friendly(self):
        breaker, _ = self.make(threshold=1)
        breaker.record_failure()
        snap = breaker.snapshot()
        assert snap["state"] == BREAKER_OPEN
        json.dumps(snap)

    def test_validates_parameters(self):
        with pytest.raises(ParameterError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ParameterError):
            CircuitBreaker(reset_after_s=-1.0)


# ---------------------------------------------------------------------------
# admission control
# ---------------------------------------------------------------------------

class TestAdmissionController:
    def test_admits_up_to_concurrency(self):
        gate = AdmissionController(max_concurrency=2, max_queue=0)
        assert gate.acquire() and gate.acquire()
        assert gate.inflight == 2

    def test_sheds_immediately_when_queue_is_zero(self):
        gate = AdmissionController(max_concurrency=1, max_queue=0)
        assert gate.acquire()
        assert not gate.acquire()
        assert gate.snapshot()["shed_total"] == 1

    def test_sheds_on_queue_wait_timeout(self):
        gate = AdmissionController(max_concurrency=1, max_queue=1)
        assert gate.acquire()
        assert not gate.acquire(timeout_s=0.05)

    def test_release_unblocks_a_waiter(self):
        gate = AdmissionController(max_concurrency=1, max_queue=1)
        assert gate.acquire()
        got = []
        waiter = threading.Thread(
            target=lambda: got.append(gate.acquire(timeout_s=5.0)))
        waiter.start()
        while gate.queued == 0:
            pass
        gate.release()
        waiter.join(timeout=5.0)
        assert got == [True]

    def test_unbalanced_release_is_an_error(self):
        gate = AdmissionController()
        with pytest.raises(ParameterError):
            gate.release()

    def test_wait_idle_is_the_drain_barrier(self):
        gate = AdmissionController(max_concurrency=1, max_queue=0)
        assert gate.wait_idle(0.01)
        assert gate.acquire()
        assert not gate.wait_idle(0.05)
        gate.release()
        assert gate.wait_idle(0.05)

    def test_validates_parameters(self):
        with pytest.raises(ParameterError):
            AdmissionController(max_concurrency=0)
        with pytest.raises(ParameterError):
            AdmissionController(max_queue=-1)


class TestServerConfig:
    def test_rejects_bad_port(self):
        with pytest.raises(ParameterError):
            ServerConfig(port=70000)

    def test_rejects_default_deadline_above_cap(self):
        with pytest.raises(ParameterError):
            ServerConfig(default_deadline_s=30.0, max_deadline_s=5.0)

    def test_rejects_unknown_policy(self):
        with pytest.raises(ParameterError):
            ServerConfig(on_bad_values="explode")


# ---------------------------------------------------------------------------
# HTTP contract of a healthy in-process server
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def model_env(tmp_path_factory):
    from repro.data import generate
    ds = generate(400, 8, 3, cluster_dim_counts=[3, 3, 4],
                  outlier_fraction=0.05, seed=77)
    result = proclus(ds.points, 3, 4.0, seed=77)
    path = save_result(result, tmp_path_factory.mktemp("serve") / "model.npz")
    return ds, result, str(path)


@pytest.fixture
def server(model_env):
    _, _, path = model_env
    srv = ProclusServer(ServerConfig(port=0, default_deadline_s=5.0,
                                     max_deadline_s=10.0),
                        model_path=path).start()
    yield srv
    srv.drain_and_stop(drain_s=2.0)


def raw_request(port: int, method: str, path: str,
                body: Optional[bytes] = None,
                headers: Optional[Dict[str, str]] = None,
                ) -> Tuple[int, Dict[str, str], Dict[str, Any]]:
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10.0)
    try:
        conn.request(method, path, body=body, headers=headers or {})
        resp = conn.getresponse()
        raw = resp.read()
        try:
            body = json.loads(raw) if raw else {}
        except ValueError:
            # http.server answers unknown verbs itself, with HTML
            body = {"_raw": raw.decode("utf-8", "replace")}
        return resp.status, dict(resp.getheaders()), body
    finally:
        conn.close()


def post_json(port: int, path: str, obj: Any,
              headers: Optional[Dict[str, str]] = None):
    return raw_request(port, "POST", path, json.dumps(obj).encode("utf-8"),
                       headers)


class TestHTTPContract:
    def test_healthz_and_readyz(self, server):
        status, _, body = raw_request(server.port, "GET", "/healthz")
        assert (status, body["status"]) == (200, "ok")
        status, _, body = raw_request(server.port, "GET", "/readyz")
        assert (status, body["ready"]) == (200, True)

    def test_served_labels_bit_identical_to_local(self, model_env, server):
        ds, result, _ = model_env
        status, _, body = post_json(server.port, "/predict",
                                    {"points": ds.points.tolist()})
        assert status == 200
        assert np.array_equal(np.asarray(body["labels"]), result.labels)
        assert body["model"]["fingerprint"]
        assert body["n_points"] == ds.n_points

    def test_wrong_dimensionality_is_structured_400(self, server):
        status, _, body = post_json(server.port, "/predict",
                                    {"points": [[1.0, 2.0]]})
        assert status == 400
        assert body["error"]["type"] == "invalid_request"
        assert "d=8" in body["error"]["message"]

    def test_nan_under_raise_policy_is_400(self, server):
        status, _, body = post_json(
            server.port, "/predict", {"points": [[None] * 8]})
        assert status == 400
        assert body["error"]["type"] == "invalid_request"

    def test_nan_with_drop_policy_labels_minus_one(self, server):
        status, _, body = post_json(
            server.port, "/predict",
            {"points": [[None] * 8], "on_bad_values": "drop"})
        assert status == 200
        assert body["labels"] == [-1]
        assert body["warnings"]

    def test_unknown_policy_is_400(self, server):
        status, _, body = post_json(
            server.port, "/predict",
            {"points": [[0.0] * 8], "on_bad_values": "explode"})
        assert status == 400

    def test_invalid_json_is_400_not_500(self, server):
        status, _, body = raw_request(
            server.port, "POST", "/predict", b"{not json",
            {"Content-Length": "9"})
        assert status == 400
        assert body["error"]["type"] == "invalid_json"

    def test_missing_points_key_is_400(self, server):
        status, _, body = post_json(server.port, "/predict", {"rows": []})
        assert status == 400
        assert "points" in body["error"]["message"]

    def test_empty_body_is_400(self, server):
        # http.client supplies Content-Length: 0; the empty body must be
        # rejected as invalid JSON, not crash the handler
        status, _, body = raw_request(server.port, "POST", "/predict")
        assert status == 400
        assert body["error"]["type"] == "invalid_json"

    def test_bad_deadline_header_is_400(self, server):
        status, _, body = post_json(server.port, "/predict",
                                    {"points": [[0.0] * 8]},
                                    {"X-Deadline-S": "soon"})
        assert status == 400

    def test_unknown_route_and_method(self, server):
        status, _, _ = raw_request(server.port, "GET", "/nope")
        assert status == 404
        status, _, _ = raw_request(server.port, "PUT", "/predict")
        assert status in (405, 501)  # 501 is http.server's own unknown-verb

    def test_stats_counts_requests(self, server):
        post_json(server.port, "/predict", {"points": [[0.0] * 8]})
        status, _, body = raw_request(server.port, "GET", "/stats")
        assert status == 200
        assert body["counters"]["requests"] >= 1
        assert body["breaker"]["state"] == BREAKER_CLOSED
        assert body["model"]["loaded"] is True

    def test_reload_swaps_and_bad_path_is_rejected(self, model_env, server):
        _, _, path = model_env
        status, _, body = post_json(server.port, "/reload", {"path": path})
        assert status == 200 and body["reloaded"] is True
        status, _, body = post_json(server.port, "/reload",
                                    {"path": path + ".missing"})
        assert status == 400
        assert body["error"]["type"] == "bad_model"
        # the good model keeps serving after the failed reload
        status, _, _ = post_json(server.port, "/predict",
                                 {"points": [[0.0] * 8]})
        assert status == 200

    def test_model_less_server_is_not_ready(self):
        srv = ProclusServer(ServerConfig(port=0)).start()
        try:
            status, _, body = raw_request(srv.port, "GET", "/readyz")
            assert (status, body["reason"]) == (503, "no_model")
            status, _, body = post_json(srv.port, "/predict",
                                        {"points": [[0.0]]})
            assert (status, body["error"]["type"]) == (503, "no_model")
        finally:
            srv.drain_and_stop(drain_s=1.0)

    def test_traced_serving_bit_identical_and_schema_valid(
            self, model_env, tmp_path):
        ds, result, path = model_env
        untraced_srv = ProclusServer(ServerConfig(port=0),
                                     model_path=path).start()
        try:
            _, _, untraced = post_json(untraced_srv.port, "/predict",
                                       {"points": ds.points.tolist()})
        finally:
            untraced_srv.drain_and_stop(drain_s=2.0)
        tracer = Tracer()
        with use_tracer(tracer):
            traced_srv = ProclusServer(ServerConfig(port=0),
                                       model_path=path).start()
            try:
                _, _, traced = post_json(traced_srv.port, "/predict",
                                         {"points": ds.points.tolist()})
            finally:
                traced_srv.drain_and_stop(drain_s=2.0)
        assert traced["labels"] == untraced["labels"]
        assert np.array_equal(np.asarray(traced["labels"]), result.labels)
        records = list(tracer.iter_records())
        spans = [r for r in records if r.get("name") == "serve.request"]
        assert spans and all(r["attrs"]["status"] == 200 for r in spans)
        counters = next(r["values"] for r in records
                        if r.get("type") == "counters")
        assert counters["serve.requests"] >= 1
        assert counters["serve.predicted_points"] == ds.n_points
        trace_path = tracer.write_jsonl(tmp_path / "serve.jsonl")
        with open(trace_path, encoding="utf-8") as fh:
            validate_trace_lines(fh)

    def test_double_start_is_a_typed_error(self, server):
        with pytest.raises(ServeError):
            server.start()


# ---------------------------------------------------------------------------
# retrying client
# ---------------------------------------------------------------------------

class TestPredictClient:
    def test_round_trip(self, model_env, server):
        ds, result, _ = model_env
        client = PredictClient(port=server.port, seed=1)
        labels = np.asarray(client.predict(ds.points)["labels"])
        assert np.array_equal(labels, result.labels)
        assert client.healthz()["status"] == "ok"
        assert client.ready()
        assert client.stats()["model"]["loaded"] is True

    def test_400_raises_parameter_error_without_retry(self, server):
        client = PredictClient(port=server.port, seed=1)
        with pytest.raises(ParameterError):
            client.predict([[1.0, 2.0]])
        assert server.stats()["counters"]["invalid_requests"] == 1

    def test_connection_refused_exhausts_retries(self):
        # bind-then-close guarantees a dead port
        import socket
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        dead_port = probe.getsockname()[1]
        probe.close()
        client = PredictClient(
            port=dead_port, seed=1,
            policy=RetryPolicy(max_attempts=2, base_backoff_s=0.01))
        with pytest.raises(ServeError, match="2 attempt"):
            client.predict([[0.0]])
        assert not client.ready()

    def test_garbled_response_is_typed_and_retried(self):
        # a non-HTTP reply raises http.client.BadStatusLine, which is
        # not an OSError — the client must still treat it as a transport
        # failure: retry it, then fail with a typed ServeError
        import socket
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(5)
        port = listener.getsockname()[1]
        served = {"n": 0}
        stop = threading.Event()

        def garble() -> None:
            while not stop.is_set():
                try:
                    conn, _ = listener.accept()
                except OSError:
                    return
                with conn:
                    served["n"] += 1
                    conn.recv(65536)
                    conn.sendall(b"!!not http!!\r\n")

        thread = threading.Thread(target=garble, daemon=True)
        thread.start()
        try:
            client = PredictClient(
                port=port, seed=1,
                policy=RetryPolicy(max_attempts=2, base_backoff_s=0.01))
            with pytest.raises(ServeError, match="2 attempt"):
                client.predict([[0.0]])
            assert served["n"] == 2, "the garbled reply must be retried"
        finally:
            stop.set()
            listener.close()
            thread.join(timeout=5.0)

    def test_total_deadline_caps_retries(self):
        import socket
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        dead_port = probe.getsockname()[1]
        probe.close()
        client = PredictClient(
            port=dead_port, seed=1,
            policy=RetryPolicy(max_attempts=50, base_backoff_s=0.2,
                               total_deadline_s=0.3))
        with pytest.raises(ServeError, match="deadline"):
            client.predict([[0.0]])

    def test_policy_validation(self):
        with pytest.raises(ParameterError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ParameterError):
            RetryPolicy(jitter_fraction=2.0)
        with pytest.raises(ParameterError):
            PredictClient(request_timeout_s=0.0)
