"""Unit tests for the EvaluateClusters objective."""

import numpy as np
import pytest

from repro.core import evaluate_clusters
from repro.core.objective import cluster_dispersions
from repro.exceptions import ParameterError


class TestClusterDispersions:
    def test_single_tight_cluster(self):
        X = np.array([[0.0, 0.0], [2.0, 0.0]])
        labels = np.array([0, 0])
        w = cluster_dispersions(X, labels, [(0, 1)])
        # centroid (1, 0); per-point |dx| = 1 on dim0, 0 on dim1 -> mean 0.5
        assert w[0] == pytest.approx(0.5)

    def test_only_cluster_dims_count(self):
        X = np.array([[0.0, 100.0], [2.0, -100.0]])
        labels = np.array([0, 0])
        w = cluster_dispersions(X, labels, [(0,)])
        assert w[0] == pytest.approx(1.0)

    def test_empty_cluster_zero(self):
        X = np.zeros((2, 2))
        labels = np.array([0, 0])
        w = cluster_dispersions(X, labels, [(0,), (1,)])
        assert w[1] == 0.0

    def test_empty_dims_rejected(self):
        with pytest.raises(ParameterError, match="empty dimension set"):
            cluster_dispersions(np.zeros((2, 2)), np.zeros(2, dtype=int), [()])


class TestEvaluateClusters:
    def test_size_weighted_average(self):
        # cluster 0: 2 points, w=0.5; cluster 1: 1 point, w=0
        X = np.array([[0.0, 0.0], [2.0, 0.0], [50.0, 50.0]])
        labels = np.array([0, 0, 1])
        obj = evaluate_clusters(X, labels, [(0, 1), (0, 1)])
        assert obj == pytest.approx((2 * 0.5 + 1 * 0.0) / 3)

    def test_lower_for_better_clustering(self, two_cluster_points):
        X = two_cluster_points
        good = np.repeat([0, 1], 40)
        bad = np.tile([0, 1], 40)
        dims = [(0, 1), (2, 3)]
        assert evaluate_clusters(X, good, dims) < evaluate_clusters(X, bad, dims)

    def test_perfect_clusters_score_zero(self):
        X = np.array([[1.0, 5.0], [1.0, 5.0], [9.0, 2.0], [9.0, 2.0]])
        labels = np.array([0, 0, 1, 1])
        assert evaluate_clusters(X, labels, [(0, 1), (0, 1)]) == 0.0

    def test_outliers_excluded_from_numerator(self):
        X = np.array([[0.0], [0.0], [1000.0]])
        labels = np.array([0, 0, -1])
        obj = evaluate_clusters(X, labels, [(0,)])
        assert obj == 0.0

    def test_empty_labels_rejected(self):
        with pytest.raises(ParameterError, match="empty"):
            evaluate_clusters(np.zeros((0, 2)), np.array([], dtype=int), [(0,)])
