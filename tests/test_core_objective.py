"""Unit tests for the EvaluateClusters objective."""

import numpy as np
import pytest

from repro.core import evaluate_clusters
from repro.core.objective import (cluster_dispersions,
                                  cluster_dispersions_and_sizes)
from repro.exceptions import ParameterError


class TestClusterDispersions:
    def test_single_tight_cluster(self):
        X = np.array([[0.0, 0.0], [2.0, 0.0]])
        labels = np.array([0, 0])
        w = cluster_dispersions(X, labels, [(0, 1)])
        # centroid (1, 0); per-point |dx| = 1 on dim0, 0 on dim1 -> mean 0.5
        assert w[0] == pytest.approx(0.5)

    def test_only_cluster_dims_count(self):
        X = np.array([[0.0, 100.0], [2.0, -100.0]])
        labels = np.array([0, 0])
        w = cluster_dispersions(X, labels, [(0,)])
        assert w[0] == pytest.approx(1.0)

    def test_empty_cluster_zero(self):
        X = np.zeros((2, 2))
        labels = np.array([0, 0])
        w = cluster_dispersions(X, labels, [(0,), (1,)])
        assert w[1] == 0.0

    def test_empty_dims_rejected(self):
        with pytest.raises(ParameterError, match="empty dimension set"):
            cluster_dispersions(np.zeros((2, 2)), np.zeros(2, dtype=int), [()])


class TestEvaluateClusters:
    def test_size_weighted_average(self):
        # cluster 0: 2 points, w=0.5; cluster 1: 1 point, w=0
        X = np.array([[0.0, 0.0], [2.0, 0.0], [50.0, 50.0]])
        labels = np.array([0, 0, 1])
        obj = evaluate_clusters(X, labels, [(0, 1), (0, 1)])
        assert obj == pytest.approx((2 * 0.5 + 1 * 0.0) / 3)

    def test_lower_for_better_clustering(self, two_cluster_points):
        X = two_cluster_points
        good = np.repeat([0, 1], 40)
        bad = np.tile([0, 1], 40)
        dims = [(0, 1), (2, 3)]
        assert evaluate_clusters(X, good, dims) < evaluate_clusters(X, bad, dims)

    def test_perfect_clusters_score_zero(self):
        X = np.array([[1.0, 5.0], [1.0, 5.0], [9.0, 2.0], [9.0, 2.0]])
        labels = np.array([0, 0, 1, 1])
        assert evaluate_clusters(X, labels, [(0, 1), (0, 1)]) == 0.0

    def test_outliers_excluded_from_numerator(self):
        X = np.array([[0.0], [0.0], [1000.0]])
        labels = np.array([0, 0, -1])
        obj = evaluate_clusters(X, labels, [(0,)])
        assert obj == 0.0

    def test_empty_labels_rejected(self):
        with pytest.raises(ParameterError, match="empty"):
            evaluate_clusters(np.zeros((0, 2)), np.array([], dtype=int), [(0,)])


class TestLabelValidation:
    def test_label_above_range_rejected(self):
        X = np.zeros((3, 2))
        with pytest.raises(ParameterError, match="label 5 is outside"):
            evaluate_clusters(X, np.array([0, 1, 5]), [(0,), (1,)])

    def test_label_below_outlier_rejected(self):
        X = np.zeros((3, 2))
        with pytest.raises(ParameterError, match="label -2 is outside"):
            cluster_dispersions(X, np.array([0, -2, 1]), [(0,), (1,)])

    def test_outlier_label_accepted(self):
        X = np.zeros((3, 2))
        w = cluster_dispersions(X, np.array([0, -1, 1]), [(0,), (1,)])
        assert set(w) == {0, 1}


class TestOnePassDispersions:
    def _reference(self, X, labels, dim_sets):
        """The historical double-mask implementation, kept as the oracle."""
        dispersions, sizes = {}, {}
        for i in range(len(dim_sets)):
            dims = np.asarray(list(dim_sets[i]), dtype=np.intp)
            if np.count_nonzero(labels == i) == 0:
                dispersions[i] = 0.0
            else:
                sub = X[labels == i][:, dims]
                centroid = sub.mean(axis=0)
                dispersions[i] = float(np.abs(sub - centroid).mean())
            sizes[i] = int(np.count_nonzero(labels == i))
        return dispersions, sizes

    def test_bit_identical_to_double_mask_reference(self):
        rng = np.random.default_rng(11)
        for trial in range(25):
            n = int(rng.integers(5, 120))
            d = int(rng.integers(2, 12))
            k = int(rng.integers(1, 6))
            X = rng.normal(size=(n, d)) * rng.uniform(0.1, 50)
            labels = rng.integers(-1, k, size=n)
            dim_sets = [
                tuple(sorted(rng.choice(d, size=rng.integers(1, d + 1),
                                        replace=False).tolist()))
                for _ in range(k)
            ]
            got_w, got_s = cluster_dispersions_and_sizes(X, labels, dim_sets)
            ref_w, ref_s = self._reference(X, labels, dim_sets)
            assert got_s == ref_s
            assert got_w == ref_w  # exact float equality: same reduction

    def test_sizes_match_mask_counts(self):
        X = np.arange(12, dtype=float).reshape(6, 2)
        labels = np.array([0, 0, 1, -1, 1, 1])
        _, sizes = cluster_dispersions_and_sizes(X, labels, [(0,), (0, 1)])
        assert sizes == {0: 2, 1: 3}
