"""Tests for the determinism & contract lint engine (repro.analysis).

Covers: one seeded-violation fixture per rule RPR001-RPR009 (the
interprocedural rules get whole fixture *packages*), clean-file
negatives, ``# repr: noqa`` suppression and staleness, JSON output
schema with 1-indexed columns, CLI exit codes, bit-stable output, and
the self-check that the repository's own source tree is finding-free
(the gate CI enforces).
"""

import json
from pathlib import Path

import pytest

from repro.analysis import (
    ALL_RULES,
    CACHE_KEY_CONTRACTS,
    format_json,
    lint_file,
    lint_paths,
    lint_source,
    rule_ids,
)
from repro.analysis.engine import DEFAULT_EXCLUDE_DIRS, iter_python_files
from repro.cli import main as cli_main
from repro.exceptions import ParameterError

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURES = REPO_ROOT / "tests" / "fixtures" / "lint_fixtures"


def rules_of(findings):
    return {f.rule for f in findings}


# ----------------------------------------------------------------------
# per-rule fixtures: seeded violations must be found
# ----------------------------------------------------------------------

def test_rpr001_flags_every_global_rng_flavour():
    findings = lint_file(FIXTURES / "rpr001_global_rng.py",
                         select=["RPR001"])
    messages = "\n".join(f.message for f in findings)
    assert len(findings) == 4
    assert "numpy.random.seed" in messages
    assert "numpy.random.rand" in messages
    assert "random.shuffle" in messages
    assert "without a seed" in messages
    assert all(f.rule == "RPR001" and f.severity == "error"
               for f in findings)


def test_rpr002_flags_wall_clock_and_set_iteration_in_core_scope():
    findings = lint_file(FIXTURES / "core" / "rpr002_wallclock.py",
                         select=["RPR002"])
    messages = "\n".join(f.message for f in findings)
    assert len(findings) == 6
    assert "time.time" in messages
    assert "os.urandom" in messages
    assert messages.count("unordered set") == 2
    # raw duration clocks are funnelled through the repro.obs.clock seam
    assert messages.count("raw duration clock") == 2
    assert "time.perf_counter" in messages


def test_rpr002_is_scoped_to_core_perf_distance():
    # identical source outside core/perf/distance is not in scope
    src = (FIXTURES / "core" / "rpr002_wallclock.py").read_text()
    assert lint_source(src, "somewhere/else/module.py",
                       select=["RPR002"]) == []


def test_rpr003_flags_under_keyed_and_undeclared_store_access():
    findings = lint_file(FIXTURES / "rpr003_under_keyed.py",
                         select=["RPR003"])
    assert len(findings) == 2
    under_keyed, undeclared = sorted(findings, key=lambda f: f.line)
    assert "without determining quantity metric" in under_keyed.message
    assert "declares no key contract" in undeclared.message


def test_rpr004_flags_annotations_and_builtin_raise():
    findings = lint_file(FIXTURES / "core" / "rpr004_api.py",
                         select=["RPR004"])
    messages = "\n".join(f.message for f in findings)
    assert len(findings) == 3
    assert "unannotated parameter(s): data" in messages
    assert "no return annotation" in messages
    assert "raises builtin ValueError" in messages
    # the private helper is exempt
    assert "_private_helper" not in messages


def test_rpr006_flags_every_float64_coercion_flavour():
    findings = lint_file(FIXTURES / "core" / "rpr006_dtype.py",
                         select=["RPR006"])
    messages = "\n".join(f.message for f in findings)
    assert len(findings) == 5
    assert "asarray" in messages
    assert "array" in messages
    assert "ascontiguousarray" in messages
    assert ".astype(float64)" in messages
    assert all(f.rule == "RPR006" and f.severity == "error"
               for f in findings)
    # the legal patterns block contributes nothing
    assert all(f.line <= 12 for f in findings)


def test_rpr006_is_scoped_to_core_perf_distance():
    src = (FIXTURES / "core" / "rpr006_dtype.py").read_text()
    assert lint_source(src, "somewhere/else/module.py",
                       select=["RPR006"]) == []


def test_rpr006_ignores_buffer_creation_and_accumulator_dtypes():
    src = ("import numpy as np\n"
           "def f(X):\n"
           "    buf = np.zeros(3, dtype=np.float64)\n"
           "    acc = X.sum(axis=0, dtype=np.float64)\n"
           "    return buf, acc\n")
    assert lint_source(src, "repro/core/mod.py", select=["RPR006"]) == []


def test_rpr006_resolves_import_aliases():
    src = ("import numpy\n"
           "def f(X):\n"
           "    return numpy.asarray(X, dtype=numpy.float64)\n")
    findings = lint_source(src, "repro/distance/mod.py", select=["RPR006"])
    assert len(findings) == 1
    assert findings[0].rule == "RPR006"


def test_rpr005_flags_lambda_nested_and_undeclared_worker_types():
    findings = lint_file(FIXTURES / "rpr005_pool.py", select=["RPR005"])
    messages = "\n".join(f.message for f in findings)
    assert len(findings) == 4
    assert "lambda" in messages
    assert "nested function 'helper'" in messages
    assert "'x' is not annotated" in messages
    assert "undeclared type name(s): Socket" in messages


def test_rpr007_convicts_impure_cached_producers_interprocedurally():
    report = lint_paths([FIXTURES / "rpr007_pkg"], select=["RPR007"])
    findings = report.findings
    assert len(findings) == 4
    assert all(f.rule == "RPR007" and f.severity == "error"
               for f in findings)
    assert all(f.path.endswith("cache.py") for f in findings)
    by_line = {f.line: f for f in findings}
    # direct producer reading mutable module state
    assert "counted_distance" in by_line[30].message
    assert "reads module global(s)" in by_line[30].message
    assert "_call_log" in by_line[30].message
    # producer mutating its array argument
    assert "scale_rows" in by_line[36].message
    assert "mutates parameter(s) X" in by_line[36].message
    # impurity reached only through the call graph
    assert "chained_distance" in by_line[42].message
    assert "(transitively)" in by_line[42].message
    # cached call site feeding a declared out-param buffer
    assert "segmental_columns" in by_line[53].message
    assert "out parameter 'out'" in by_line[53].message
    # the pure producer contributes nothing
    assert not any("pure_distance" in f.message for f in findings)


def test_rpr008_flags_unfrozen_publish_and_post_publish_mutation():
    report = lint_paths([FIXTURES / "rpr008_pkg"], select=["RPR008"])
    findings = report.findings
    assert len(findings) == 4
    assert all(f.rule == "RPR008" for f in findings)
    messages = "\n".join(f.message for f in findings)
    assert "never write-protects the view" in messages
    assert "mutated afterwards (via subscript assignment)" in messages
    assert "mutated afterwards (via augmented assignment)" in messages
    # the alias write is attributed to the view name, not the source
    assert "'Y' was published" in messages
    assert "mutates its 'X' parameter (transitively)" in messages
    # pre-publish writes and name rebinding stay legal
    assert not any(f.line >= 33 for f in findings
                   if f.path.endswith("fanout.py"))


def test_rpr009_flags_stale_directives_and_keeps_live_ones():
    findings = lint_file(FIXTURES / "rpr009_stale.py", select=["RPR009"])
    assert [(f.line, f.col) for f in findings] == [(11, 19), (15, 15)]
    assert "'# repr: noqa RPR001'" in findings[0].message
    assert "'# repr: noqa'" in findings[1].message
    # the live directive on line 7 is not reported, and the RPR001 it
    # suppresses stays suppressed under a full-registry run
    full = lint_file(FIXTURES / "rpr009_stale.py")
    assert rules_of(full) == {"RPR009"}
    assert all(f.line in (11, 15) for f in full)


def test_rpr009_findings_cannot_be_self_suppressed():
    src = ("def f(x):\n"
           "    return x  # repr: noqa\n")
    findings = lint_source(src, "mod.py")
    assert rules_of(findings) == {"RPR009"}


# ----------------------------------------------------------------------
# negatives: clean files, suppression, thread pools
# ----------------------------------------------------------------------

def test_clean_core_fixture_has_no_findings():
    assert lint_file(FIXTURES / "core" / "clean_core.py") == []


def test_noqa_suppresses_named_rule():
    assert lint_file(FIXTURES / "rpr001_noqa.py") == []


def test_noqa_without_ids_suppresses_everything_on_the_line():
    src = ("import numpy as np\n"
           "def f():\n"
           "    return np.random.rand(3)  # repr: noqa\n")
    assert lint_source(src, "mod.py") == []


def test_noqa_for_a_different_rule_does_not_suppress():
    src = ("import numpy as np\n"
           "def f():\n"
           "    return np.random.rand(3)  # repr: noqa RPR005\n")
    findings = lint_source(src, "mod.py")
    # RPR001 still fires, and the mistargeted directive is itself stale
    assert rules_of(findings) == {"RPR001", "RPR009"}
    assert rules_of(lint_source(src, "mod.py", select=["RPR001"])) == \
        {"RPR001"}


def test_thread_pool_lambdas_are_exempt_from_rpr005():
    src = ("from concurrent.futures import ThreadPoolExecutor\n"
           "def run(items):\n"
           "    with ThreadPoolExecutor() as pool:\n"
           "        return list(pool.map(lambda x: x + 1, items))\n")
    assert lint_source(src, "mod.py", select=["RPR005"]) == []


def test_local_variable_named_random_is_not_flagged():
    src = ("def f(random):\n"
           "    return random.choice([1, 2])\n")
    assert lint_source(src, "mod.py", select=["RPR001"]) == []


def test_seeded_generator_construction_is_legal():
    src = ("import numpy as np\n"
           "def f(seed: int) -> np.ndarray:\n"
           "    rng = np.random.default_rng(seed)\n"
           "    return rng.random(3)\n")
    assert lint_source(src, "mod.py", select=["RPR001"]) == []


# ----------------------------------------------------------------------
# engine mechanics
# ----------------------------------------------------------------------

def test_fixture_directory_is_excluded_from_directory_walks():
    assert "lint_fixtures" in DEFAULT_EXCLUDE_DIRS
    walked = list(iter_python_files([FIXTURES.parent.parent]))
    assert all("lint_fixtures" not in p.parts for p in walked)


def test_unknown_rule_id_raises_parameter_error():
    with pytest.raises(ParameterError, match="unknown rule id"):
        lint_source("x = 1\n", "mod.py", select=["RPR999"])


def test_syntax_error_fails_the_gate():
    with pytest.raises(ParameterError, match="invalid Python syntax"):
        lint_source("def broken(:\n", "mod.py")


def test_registry_lists_all_nine_rules():
    assert rule_ids() == ["RPR001", "RPR002", "RPR003", "RPR004", "RPR005",
                          "RPR006", "RPR007", "RPR008", "RPR009"]
    assert len(ALL_RULES) == 9


def test_select_accepts_comma_separated_rule_lists():
    findings = lint_file(FIXTURES / "rpr009_stale.py",
                         select=["RPR001,RPR009"])
    assert rules_of(findings) == {"RPR009"}
    # mixed comma/space chunks normalise identically
    same = lint_file(FIXTURES / "rpr009_stale.py",
                     select=["rpr001", "RPR009"])
    assert findings == same


def test_select_with_unknown_id_in_comma_list_raises():
    with pytest.raises(ParameterError, match="unknown rule id"):
        lint_source("x = 1\n", "mod.py", select=["RPR001,RPR042"])


def test_select_with_only_separators_raises():
    with pytest.raises(ParameterError, match="names no rule ids"):
        lint_source("x = 1\n", "mod.py", select=[" , "])


def test_contract_table_matches_real_cache_methods():
    import repro.perf.cache as cache_mod

    for method in CACHE_KEY_CONTRACTS["IterativeCache"]:
        assert hasattr(cache_mod.IterativeCache, method)


# ----------------------------------------------------------------------
# JSON schema + CLI
# ----------------------------------------------------------------------

def test_json_output_schema():
    report = lint_paths([FIXTURES / "rpr001_global_rng.py"])
    payload = json.loads(format_json(report))
    assert payload["version"] == 1
    assert payload["files_checked"] == 1
    assert payload["counts"] == {"RPR001": 4}
    assert len(payload["findings"]) == 4
    for finding in payload["findings"]:
        assert set(finding) == {"rule", "severity", "path", "line", "col",
                                "message", "hint"}
        assert finding["rule"] == "RPR001"
        assert finding["severity"] == "error"
        assert isinstance(finding["col"], int)
        assert finding["path"].endswith("rpr001_global_rng.py")
    # columns are exact 1-indexed offsets of the offending expression,
    # stable enough for editors to jump to
    coords = [(f["line"], f["col"]) for f in payload["findings"]]
    assert coords == [(9, 5), (10, 12), (11, 5), (12, 11)]


def test_noqa_directive_columns_point_at_the_hash():
    findings = lint_file(FIXTURES / "rpr009_stale.py", select=["RPR009"])
    src_lines = (FIXTURES / "rpr009_stale.py").read_text().splitlines()
    for f in findings:
        assert src_lines[f.line - 1][f.col - 1] == "#"


def test_lint_output_is_bit_stable_across_runs():
    first = format_json(lint_paths([FIXTURES], select=None))
    second = format_json(lint_paths([FIXTURES], select=None))
    assert first == second


def test_cli_lint_exits_nonzero_on_findings(capsys):
    code = cli_main(["lint", str(FIXTURES / "rpr001_global_rng.py"),
                     "--format", "json"])
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["counts"] == {"RPR001": 4}


def test_cli_lint_select_restricts_rules(capsys):
    code = cli_main(["lint", str(FIXTURES / "core" / "rpr002_wallclock.py"),
                     "--select", "RPR002", "--format", "json"])
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert set(payload["counts"]) == {"RPR002"}


def test_cli_lint_select_accepts_comma_lists(capsys):
    code = cli_main(["lint", str(FIXTURES / "rpr009_stale.py"),
                     "--select", "RPR001,RPR009", "--format", "json"])
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert set(payload["counts"]) == {"RPR009"}


def test_cli_lint_unknown_rule_is_a_usage_error(capsys):
    code = cli_main(["lint", str(FIXTURES), "--select", "RPR042"])
    assert code == 2
    assert "unknown rule id" in capsys.readouterr().err


def test_cli_lint_unknown_rule_in_comma_list_is_a_usage_error(capsys):
    code = cli_main(["lint", str(FIXTURES), "--select", "RPR001,RPR042"])
    assert code == 2
    assert "unknown rule id" in capsys.readouterr().err


# ----------------------------------------------------------------------
# the gate itself: the repository must be clean
# ----------------------------------------------------------------------

def test_repo_src_tree_is_finding_free():
    report = lint_paths([REPO_ROOT / "src"])
    assert report.files_checked > 80
    assert report.findings == [], "\n".join(
        f"{f.location()}: {f.rule} {f.message}" for f in report.findings
    )


def test_cli_self_check_src_and_tests_exit_zero(capsys):
    code = cli_main(["lint", str(REPO_ROOT / "src"),
                     str(REPO_ROOT / "tests")])
    assert code == 0
    assert "0 findings" in capsys.readouterr().out
