"""Precision-aware compute path: dtype threading, contracts, round-trips.

The working dtype (float64 default, float32 opt-in) is chosen once at
the public API boundary and preserved by every kernel downstream.  The
tests here pin the two halves of that contract:

* **float64 is bit-identical to the historical path** — running with
  ``dtype="float64"`` (or not passing ``dtype`` at all) produces the
  same bits across cache on/off, serial/parallel restarts, and
  checkpoint/resume;
* **float32 is deterministic within the dtype** — repeated runs,
  cached/uncached runs, parallel fan-outs, and resumed runs all agree
  bit-for-bit, and the result round-trips through ``save_result`` /
  ``load_result`` without widening.

Plus the satellite regressions that rode along: the bincount-based
``find_bad_medoids``, the budget-honouring empty-cluster placeholder,
and ``segmental_columns``' up-front ``out`` validation.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import Proclus, load_result, proclus, save_result
from repro.core.config import ProclusConfig
from repro.core.dimensions import find_dimensions_from_clusters
from repro.core.iterative import find_bad_medoids
from repro.data import generate
from repro.distance import (
    cross_distances,
    pairwise_distances,
    per_dimension_average_distance,
    segmental_distances_to_point,
)
from repro.dtypes import as_working, check_dtype, to_float64, working_dtype
from repro.exceptions import CheckpointError, ParameterError
from repro.metrics import adjusted_rand_index
from repro.obs import Tracer, use_tracer
from repro.perf.cache import IterativeCache
from repro.perf.kernels import segmental_columns
from repro.perf.parallel import SharedMatrix
from repro.robustness.guards import resolve_row_chunk
from repro.robustness.sanitize import sanitize
from repro.validation import check_array

DS = generate(900, 12, 3, cluster_dim_counts=[5, 4, 6],
              outlier_fraction=0.05, seed=21)
K, L, SEED = 3, 4, 9


def fingerprint(result):
    return (
        result.labels.tobytes(),
        result.medoids.tobytes(),
        result.medoid_indices.tobytes(),
        tuple(sorted(result.dimensions.items())),
        result.objective,
        result.iterative_objective,
    )


# ----------------------------------------------------------------------
# the seam: check_dtype / as_working / to_float64
# ----------------------------------------------------------------------

class TestDtypeSeam:
    def test_check_dtype_defaults_to_float64(self):
        assert check_dtype(None) == "float64"

    @pytest.mark.parametrize("value", ["float32", np.float32,
                                       np.dtype(np.float32), "<f4"])
    def test_check_dtype_accepts_float32_spellings(self, value):
        assert check_dtype(value) == "float32"

    @pytest.mark.parametrize("value", ["float16", np.int32, "int64",
                                       complex, "not-a-dtype"])
    def test_check_dtype_rejects_non_working_dtypes(self, value):
        with pytest.raises(ParameterError):
            check_dtype(value)

    def test_as_working_preserves_float32_and_float64(self):
        for dt in (np.float32, np.float64):
            X = np.ones((3, 2), dtype=dt)
            assert as_working(X) is X  # no copy for a working dtype

    def test_as_working_coerces_everything_else_to_float64(self):
        assert as_working(np.ones(3, dtype=np.int32)).dtype == np.float64
        assert as_working([[1, 2]]).dtype == np.float64
        assert as_working(np.ones(3, dtype=np.float16)).dtype == np.float64

    def test_working_dtype_of_lists_is_float64(self):
        assert working_dtype([1.0, 2.0]) == np.float64

    def test_to_float64_is_the_explicit_upcast(self):
        out = to_float64(np.ones(3, dtype=np.float32))
        assert out.dtype == np.float64

    def test_check_array_preserves_working_dtype_by_default(self):
        X32 = np.ones((4, 2), dtype=np.float32)
        assert check_array(X32, name="X").dtype == np.float32
        assert check_array([[1, 2], [3, 4]], name="X").dtype == np.float64

    def test_check_array_explicit_dtype_converts(self):
        X32 = np.ones((4, 2), dtype=np.float32)
        assert check_array(X32, name="X",
                           dtype=np.float64).dtype == np.float64

    def test_sanitize_threads_the_dtype(self):
        X = np.ones((6, 3))
        X[0, 0] = np.nan
        cleaned, report = sanitize(X, on_bad_values="drop", warn=False,
                                   dtype="float32")
        assert cleaned.dtype == np.float32
        assert report.dropped_rows.size == 1

    def test_config_validates_dtype(self):
        cfg = ProclusConfig(k=3, l=3, dtype=np.float32)
        assert cfg.validated(100, 10).dtype == "float32"
        with pytest.raises(ParameterError):
            ProclusConfig(k=3, l=3, dtype="int8").validated(100, 10)


# ----------------------------------------------------------------------
# kernels compute natively in the working dtype
# ----------------------------------------------------------------------

class TestKernelDtypes:
    @pytest.fixture(params=[np.float32, np.float64])
    def X(self, request):
        rng = np.random.default_rng(4)
        return rng.normal(size=(50, 6)).astype(request.param)

    def test_segmental_columns_preserves_dtype(self, X):
        out = segmental_columns(X, X[:3], [(0, 1), (2, 3), (4, 5)])
        assert out.dtype == X.dtype

    def test_segmental_distances_to_point_preserves_dtype(self, X):
        out = segmental_distances_to_point(X, X[0], (1, 3))
        assert out.dtype == X.dtype

    def test_cross_and_pairwise_distances_preserve_dtype(self, X):
        assert cross_distances(X, X[:4]).dtype == X.dtype
        assert pairwise_distances(X[:8]).dtype == X.dtype

    def test_ranking_statistics_always_accumulate_in_float64(self, X):
        # the Z-score ranking domain is float64 for any working dtype
        assert per_dimension_average_distance(X, X[0]).dtype == np.float64

    def test_chunked_segmental_matches_unchunked_bits(self, X):
        dims = [(0, 2, 4), (1, 3), (0, 5)]
        full = segmental_columns(X, X[:3], dims)
        tight = segmental_columns(X, X[:3], dims,
                                  memory_budget_bytes=X.itemsize * 6 * 8)
        np.testing.assert_array_equal(full, tight)

    def test_float32_budget_fits_twice_the_rows(self):
        budget = 64_000
        assert (resolve_row_chunk(10**6, 8, budget, itemsize=4)
                == 2 * resolve_row_chunk(10**6, 8, budget, itemsize=8))

    def test_cache_holds_columns_in_the_working_dtype(self):
        X = np.random.default_rng(5).normal(size=(40, 4)).astype(np.float32)
        cache = IterativeCache()
        cols = cache.distance_columns(X, np.array([0, 1]), "euclidean")
        assert cols.dtype == np.float32
        seg = cache.segmental_matrix(X, np.array([0, 1]), [(0, 1), (2, 3)])
        assert seg.dtype == np.float32

    def test_shared_matrix_publishes_float32_without_widening(self):
        X = np.random.default_rng(6).normal(size=(5, 3)).astype(np.float32)
        plane = SharedMatrix.publish(X)
        try:
            view = SharedMatrix.attach(plane.descriptor)
            assert view.dtype == np.float32
            np.testing.assert_array_equal(np.asarray(view), X)
        finally:
            plane.unlink()


# ----------------------------------------------------------------------
# satellite regressions
# ----------------------------------------------------------------------

class TestSatellites:
    def test_find_bad_medoids_matches_naive_count(self):
        rng = np.random.default_rng(11)
        for k in (2, 4, 7):
            labels = rng.integers(-1, k, size=500)
            naive = np.array([np.count_nonzero(labels == i)
                              for i in range(k)])
            expected = sorted(
                set(np.flatnonzero(
                    naive < (labels.size / k) * 0.3).tolist())
                | {int(np.argmin(naive))}
            )
            assert find_bad_medoids(labels, k, 0.3) == expected

    def test_find_bad_medoids_with_empty_cluster(self):
        labels = np.array([0, 0, 0, 2, 2])  # cluster 1 is empty
        assert 1 in find_bad_medoids(labels, 3, 0.1)

    def test_empty_cluster_placeholder_honours_nearest_two(self):
        # the segmental-kernel routing must pick the same nearest-2
        # members the historical unbudgeted |X - medoid| sum picked
        rng = np.random.default_rng(7)
        X = rng.normal(size=(30, 5))
        labels = np.zeros(30, dtype=np.int64)
        labels[:15] = 1  # cluster 2 is empty
        medoid_indices = np.array([0, 20, 10])
        sets = find_dimensions_from_clusters(X, labels, medoid_indices, 3.0)
        assert len(sets) == 3 and all(len(s) >= 2 for s in sets)

    def test_empty_cluster_placeholder_matches_manhattan_order(self):
        rng = np.random.default_rng(8)
        X = rng.normal(size=(25, 4))
        m = 6
        dist = np.abs(X - X[m]).sum(axis=1)
        dist[m] = np.inf
        naive = np.argsort(dist, kind="stable")[:2]
        routed = segmental_distances_to_point(X, X[m], np.arange(4))
        routed[m] = np.inf
        assert np.array_equal(np.argsort(routed, kind="stable")[:2], naive)

    def test_segmental_columns_out_shape_is_validated(self):
        X = np.ones((10, 4))
        with pytest.raises(ParameterError, match="expected \\(10, 2\\)"):
            segmental_columns(X, X[:2], [(0,), (1,)],
                              out=np.empty((10, 3)))

    def test_segmental_columns_out_dtype_is_validated(self):
        X = np.ones((10, 4))
        with pytest.raises(ParameterError, match="working "):
            segmental_columns(X, X[:2], [(0,), (1,)],
                              out=np.empty((10, 2), dtype=np.float32))

    def test_segmental_columns_valid_out_is_filled_in_place(self):
        X = np.random.default_rng(9).normal(size=(10, 4))
        out = np.empty((10, 2))
        returned = segmental_columns(X, X[:2], [(0, 1), (2, 3)], out=out)
        assert returned is out
        np.testing.assert_array_equal(
            out, segmental_columns(X, X[:2], [(0, 1), (2, 3)]))


# ----------------------------------------------------------------------
# float64: bit-identical to the historical default path
# ----------------------------------------------------------------------

class TestFloat64BitIdentity:
    def test_explicit_float64_equals_default(self):
        a = proclus(DS.points, K, L, seed=SEED)
        b = proclus(DS.points, K, L, seed=SEED, dtype="float64")
        assert fingerprint(a) == fingerprint(b)
        assert a.medoids.dtype == np.float64

    def test_cache_toggle_is_bit_identical(self):
        a = proclus(DS.points, K, L, seed=SEED, dtype="float64", cache=True)
        b = proclus(DS.points, K, L, seed=SEED, dtype="float64", cache=False)
        assert fingerprint(a) == fingerprint(b)

    def test_parallel_restarts_match_serial(self):
        a = proclus(DS.points, K, L, seed=SEED, dtype="float64", restarts=3)
        b = proclus(DS.points, K, L, seed=SEED, dtype="float64", restarts=3,
                    n_jobs=2)
        assert fingerprint(a) == fingerprint(b)

    def test_resume_is_bit_identical(self, tmp_path):
        straight = proclus(DS.points, K, L, seed=SEED, restarts=3,
                           dtype="float64")
        ckpt = str(tmp_path / "run64")
        proclus(DS.points, K, L, seed=SEED, restarts=3, dtype="float64",
                checkpoint_dir=ckpt)
        resumed = proclus(DS.points, K, L, seed=SEED, restarts=3,
                          dtype="float64", checkpoint_dir=ckpt, resume=True)
        assert fingerprint(straight) == fingerprint(resumed)


# ----------------------------------------------------------------------
# float32: deterministic within the dtype
# ----------------------------------------------------------------------

class TestFloat32Determinism:
    def test_repeated_runs_are_bit_identical(self):
        a = proclus(DS.points, K, L, seed=SEED, dtype="float32")
        b = proclus(DS.points, K, L, seed=SEED, dtype="float32")
        assert fingerprint(a) == fingerprint(b)
        assert a.medoids.dtype == np.float32

    def test_cache_toggle_is_bit_identical(self):
        a = proclus(DS.points, K, L, seed=SEED, dtype="float32", cache=True)
        b = proclus(DS.points, K, L, seed=SEED, dtype="float32", cache=False)
        assert fingerprint(a) == fingerprint(b)

    def test_parallel_restarts_match_serial(self):
        a = proclus(DS.points, K, L, seed=SEED, dtype="float32", restarts=3)
        b = proclus(DS.points, K, L, seed=SEED, dtype="float32", restarts=3,
                    n_jobs=2)
        assert fingerprint(a) == fingerprint(b)

    def test_float32_input_is_not_silently_widened(self):
        result = proclus(DS.points.astype(np.float32), K, L, seed=SEED,
                         dtype="float32")
        assert result.medoids.dtype == np.float32

    def test_estimator_predict_joins_fitted_precision(self):
        est = Proclus(k=K, l=L, seed=SEED, dtype="float32").fit(DS.points)
        labels = est.predict(DS.points)  # float64 input, float32 fit
        assert labels.shape == (DS.points.shape[0],)

    def test_save_load_round_trips_float32(self, tmp_path):
        result = proclus(DS.points, K, L, seed=SEED, dtype="float32")
        path = save_result(result, tmp_path / "r32.npz")
        loaded = load_result(path)
        assert loaded.medoids.dtype == np.float32
        assert fingerprint(loaded)[:4] == fingerprint(result)[:4]

    def test_checkpoint_resume_is_bit_identical(self, tmp_path):
        straight = proclus(DS.points, K, L, seed=SEED, restarts=3,
                           dtype="float32")
        ckpt = str(tmp_path / "run32")
        proclus(DS.points, K, L, seed=SEED, restarts=3, dtype="float32",
                checkpoint_dir=ckpt)
        resumed = proclus(DS.points, K, L, seed=SEED, restarts=3,
                          dtype="float32", checkpoint_dir=ckpt, resume=True)
        assert fingerprint(straight) == fingerprint(resumed)

    def test_checkpoint_refuses_the_other_precision(self, tmp_path):
        ckpt = str(tmp_path / "mixed")
        proclus(DS.points, K, L, seed=SEED, restarts=2, dtype="float32",
                checkpoint_dir=ckpt)
        with pytest.raises(CheckpointError):
            proclus(DS.points, K, L, seed=SEED, restarts=2, dtype="float64",
                    checkpoint_dir=ckpt, resume=True)

    def test_profile_reports_fewer_bytes_moved(self):
        def bytes_counters(dtype):
            tracer = Tracer()
            with use_tracer(tracer):
                proclus(DS.points, K, L, seed=SEED, dtype=dtype,
                        profile=True)
            counters = tracer.profile()["counters"]
            return (counters.get("kernel.segmental_bytes", 0),
                    counters.get("kernel.distance_bytes", 0))

        seg64, dist64 = bytes_counters("float64")
        seg32, dist32 = bytes_counters("float32")
        assert seg64 > 0 and dist64 > 0
        assert seg32 * 2 <= seg64 * 1.05  # ~half the bytes per unit work
        assert dist32 < dist64


# ----------------------------------------------------------------------
# property: float32 and float64 agree on separated clusters
# ----------------------------------------------------------------------

@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_float32_labels_agree_with_float64_on_separated_clusters(seed):
    ds = generate(400, 10, 3, cluster_dim_counts=[4, 4, 5],
                  outlier_fraction=0.0, seed=seed)
    r64 = proclus(ds.points, 3, 4, seed=seed)
    r32 = proclus(ds.points, 3, 4, seed=seed, dtype="float32")
    assert adjusted_rand_index(r32.labels, r64.labels) >= 0.9
