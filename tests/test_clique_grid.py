"""Unit tests for the CLIQUE grid."""

import numpy as np
import pytest

from repro.baselines.clique import Grid
from repro.exceptions import ParameterError


class TestGridFit:
    def test_bounds_from_data(self):
        X = np.array([[0.0, 10.0], [100.0, 20.0]])
        g = Grid(xi=10).fit(X)
        assert g.n_dims == 2
        assert np.allclose(g.interval_widths, [10.0, 1.0])

    def test_unfitted_raises(self):
        with pytest.raises(ParameterError, match="not fitted"):
            Grid(10).cell_indices(np.zeros((2, 2)))

    def test_explicit_bounds(self):
        g = Grid(xi=4, bounds=(np.array([0.0]), np.array([8.0])))
        cells = g.cell_indices(np.array([[0.0], [1.9], [2.0], [7.9]]))
        assert cells.ravel().tolist() == [0, 0, 1, 3]

    def test_invalid_bounds(self):
        with pytest.raises(ParameterError, match="highs >= lows"):
            Grid(4, bounds=(np.array([2.0]), np.array([1.0])))


class TestCellIndices:
    def test_within_range(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(-5, 5, size=(200, 3))
        cells = Grid(xi=7).fit_transform(X)
        assert cells.min() >= 0
        assert cells.max() <= 6

    def test_upper_boundary_in_last_interval(self):
        X = np.array([[0.0], [10.0]])
        cells = Grid(xi=10).fit_transform(X)
        assert cells.ravel().tolist() == [0, 9]

    def test_constant_dimension_all_zero(self):
        X = np.column_stack([np.full(5, 3.0), np.arange(5.0)])
        cells = Grid(xi=10).fit_transform(X)
        assert (cells[:, 0] == 0).all()

    def test_out_of_box_points_clamped(self):
        g = Grid(xi=10, bounds=(np.array([0.0]), np.array([10.0])))
        cells = g.cell_indices(np.array([[-5.0], [15.0]]))
        assert cells.ravel().tolist() == [0, 9]

    def test_dim_mismatch_rejected(self):
        g = Grid(xi=10).fit(np.zeros((3, 2)))
        with pytest.raises(ParameterError, match="fitted on"):
            g.cell_indices(np.zeros((3, 3)))

    def test_uniform_histogram_roughly_flat(self):
        rng = np.random.default_rng(1)
        X = rng.uniform(0, 100, size=(10_000, 1))
        cells = Grid(xi=10).fit_transform(X)
        counts = np.bincount(cells[:, 0], minlength=10)
        assert counts.min() > 800
        assert counts.max() < 1200


class TestIntervalBounds:
    def test_known_interval(self):
        g = Grid(xi=5, bounds=(np.array([0.0]), np.array([100.0])))
        low, high = g.interval_bounds(0, 2)
        assert (low, high) == (40.0, 60.0)

    def test_invalid_interval(self):
        g = Grid(xi=5, bounds=(np.array([0.0]), np.array([100.0])))
        with pytest.raises(ParameterError):
            g.interval_bounds(0, 5)
