"""Chaos suite for the query server: the failure modes it exists for.

Every scenario here injects a real fault — a dribbling client socket, a
crashing or hanging predict kernel (via
:class:`repro.robustness.faults.ServeFaultSpec`), overload past the
admission gate, a SIGTERM mid-request — and asserts the server's typed,
bounded reaction: 408/504 on deadlines, 429 on shedding, 503 with an
open circuit, a clean drain with zero dropped in-flight requests.
"""

from __future__ import annotations

import http.client
import json
import signal
import socket
import subprocess
import sys
import threading
import time
from typing import Any, Dict, Optional, Tuple

import numpy as np
import pytest

from repro.core.proclus import proclus
from repro.core.serialization import save_result
from repro.robustness.faults import ServeFaultSpec
from repro.serve import (BREAKER_CLOSED, BREAKER_OPEN, ProclusServer,
                         ServerConfig)

pytestmark = [pytest.mark.chaos]


@pytest.fixture(scope="module")
def model_env(tmp_path_factory):
    from repro.data import generate
    ds = generate(300, 8, 3, cluster_dim_counts=[3, 3, 4],
                  outlier_fraction=0.05, seed=55)
    result = proclus(ds.points, 3, 4.0, seed=55)
    path = save_result(result, tmp_path_factory.mktemp("chaos") / "model.npz")
    return ds, result, str(path)


def post_json(port: int, path: str, obj: Any,
              headers: Optional[Dict[str, str]] = None,
              timeout: float = 15.0,
              ) -> Tuple[int, Dict[str, str], Dict[str, Any]]:
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        body = json.dumps(obj).encode("utf-8")
        send = {"Content-Type": "application/json"}
        send.update(headers or {})
        conn.request("POST", path, body=body, headers=send)
        resp = conn.getresponse()
        return resp.status, dict(resp.getheaders()), json.loads(resp.read())
    finally:
        conn.close()


def recv_all(sock: socket.socket) -> bytes:
    """Drain a socket to EOF: the response may span TCP segments."""
    chunks = []
    while True:
        try:
            chunk = sock.recv(65536)
        except socket.timeout:
            break
        if not chunk:
            break
        chunks.append(chunk)
    return b"".join(chunks)


def make_server(path: str, **overrides: Any) -> ProclusServer:
    kwargs: Dict[str, Any] = dict(port=0, default_deadline_s=5.0,
                                  max_deadline_s=10.0)
    kwargs.update(overrides)
    return ProclusServer(ServerConfig(**kwargs), model_path=path).start()


# ---------------------------------------------------------------------------
# slow/malformed clients: deadlines and typed 4xx, never a 500
# ---------------------------------------------------------------------------

class TestHostileClients:
    def test_slow_loris_body_is_cut_off_with_408(self, model_env):
        _, _, path = model_env
        srv = make_server(path)
        try:
            sock = socket.create_connection(("127.0.0.1", srv.port),
                                            timeout=10.0)
            try:
                # declare a body, send half of it, then stall past the
                # 0.3s request deadline
                sock.sendall(b"POST /predict HTTP/1.0\r\n"
                             b"Content-Length: 1000\r\n"
                             b"X-Deadline-S: 0.3\r\n\r\n"
                             b'{"points": [[')
                response = recv_all(sock)
            finally:
                sock.close()
            assert b"408" in response.split(b"\r\n", 1)[0]
            assert b"request_timeout" in response
            assert srv.stats()["counters"]["read_timeouts"] == 1
        finally:
            assert srv.drain_and_stop(drain_s=2.0)

    def test_missing_content_length_is_400(self, model_env):
        _, _, path = model_env
        srv = make_server(path)
        try:
            sock = socket.create_connection(("127.0.0.1", srv.port),
                                            timeout=10.0)
            try:
                sock.sendall(b"POST /predict HTTP/1.0\r\n\r\n")
                response = recv_all(sock)
            finally:
                sock.close()
            assert b"400" in response.split(b"\r\n", 1)[0]
            assert b"Content-Length" in response
        finally:
            srv.drain_and_stop(drain_s=2.0)

    def test_oversized_declared_body_is_rejected_unread(self, model_env):
        _, _, path = model_env
        srv = make_server(path, max_body_bytes=1024)
        try:
            status, _, body = post_json(
                srv.port, "/predict", {"points": [[0.0] * 8] * 200})
            assert status == 400
            assert "exceeds" in body["error"]["message"]
        finally:
            srv.drain_and_stop(drain_s=2.0)

    def test_oversized_batch_is_structured_400(self, model_env):
        ds, _, path = model_env
        srv = make_server(path, max_points=10)
        try:
            status, _, body = post_json(
                srv.port, "/predict", {"points": ds.points[:50].tolist()})
            assert status == 400
            assert body["error"]["type"] == "invalid_request"
            assert "at most 10" in body["error"]["message"]
        finally:
            srv.drain_and_stop(drain_s=2.0)


# ---------------------------------------------------------------------------
# kernel faults: the circuit breaker opens, recovers via half-open probe
# ---------------------------------------------------------------------------

class TestCircuitBreakerChaos:
    def test_breaker_opens_on_faults_and_recovers(self, model_env):
        ds, result, path = model_env
        srv = make_server(path, breaker_threshold=2, breaker_reset_s=0.25)
        srv.set_fault(ServeFaultSpec("kernel_error", first=0, times=2))
        try:
            batch = {"points": ds.points[:5].tolist()}
            # the injected crashes surface as structured 500s...
            for _ in range(2):
                status, _, body = post_json(srv.port, "/predict", batch)
                assert status == 500
                assert body["error"]["type"] == "internal"
            assert srv.breaker.state == BREAKER_OPEN
            # ...and the opened breaker rejects before the kernel
            status, headers, body = post_json(srv.port, "/predict", batch)
            assert status == 503
            assert body["error"]["type"] == "circuit_open"
            assert int(headers["Retry-After"]) >= 1
            status, _, body = post_json(srv.port, "/reload", {})  # probe-free
            assert status == 200  # reload is not gated by the breaker
            stats = srv.stats()
            assert stats["counters"]["kernel_failures"] == 2
            assert stats["counters"]["breaker_rejections"] == 1
            # readiness reflects the open circuit
            conn = http.client.HTTPConnection("127.0.0.1", srv.port,
                                              timeout=10.0)
            conn.request("GET", "/readyz")
            resp = conn.getresponse()
            ready = json.loads(resp.read())
            conn.close()
            assert resp.status == 503 and ready["reason"] == "circuit_open"
            # after the reset window the half-open probe heals the server
            srv.set_fault(None)
            time.sleep(0.3)
            status, _, body = post_json(srv.port, "/predict", batch)
            assert status == 200
            assert np.array_equal(np.asarray(body["labels"]),
                                  result.labels[:5])
            assert srv.breaker.state == BREAKER_CLOSED
        finally:
            assert srv.drain_and_stop(drain_s=2.0)

    def test_failed_probe_reopens_the_breaker(self, model_env):
        ds, _, path = model_env
        srv = make_server(path, breaker_threshold=1, breaker_reset_s=0.2)
        srv.set_fault(ServeFaultSpec("kernel_error", first=0, times=2))
        try:
            batch = {"points": ds.points[:3].tolist()}
            assert post_json(srv.port, "/predict", batch)[0] == 500
            assert srv.breaker.state == BREAKER_OPEN
            time.sleep(0.25)
            # the half-open probe hits the second injected fault
            assert post_json(srv.port, "/predict", batch)[0] == 500
            assert srv.breaker.state == BREAKER_OPEN
        finally:
            srv.drain_and_stop(drain_s=2.0)

    def test_typed_probe_error_does_not_wedge_half_open(self, model_env):
        # regression: a half-open probe that dies of a *typed* error
        # (here a malformed batch, 400) records neither success nor
        # failure — the probe slot must be abandoned, or the circuit
        # sits in HALF_OPEN rejecting every request until restart
        ds, result, path = model_env
        srv = make_server(path, breaker_threshold=1, breaker_reset_s=0.2)
        srv.set_fault(ServeFaultSpec("kernel_error", first=0, times=1))
        try:
            batch = {"points": ds.points[:3].tolist()}
            assert post_json(srv.port, "/predict", batch)[0] == 500
            assert srv.breaker.state == BREAKER_OPEN
            time.sleep(0.25)
            # the probe is a wrong-dimensionality batch: typed 400
            status, _, body = post_json(srv.port, "/predict",
                                        {"points": [[1.0, 2.0]]})
            assert status == 400
            assert body["error"]["type"] == "invalid_request"
            # the freed probe lets the next good request heal the server
            status, _, body = post_json(srv.port, "/predict", batch)
            assert status == 200
            assert np.array_equal(np.asarray(body["labels"]),
                                  result.labels[:3])
            assert srv.breaker.state == BREAKER_CLOSED
        finally:
            assert srv.drain_and_stop(drain_s=2.0)

    def test_typed_errors_do_not_trip_the_breaker(self, model_env):
        _, _, path = model_env
        srv = make_server(path, breaker_threshold=1)
        try:
            # a malformed query is the client's fault, not the kernel's
            status, _, _ = post_json(srv.port, "/predict",
                                     {"points": [[1.0, 2.0]]})
            assert status == 400
            assert srv.breaker.state == BREAKER_CLOSED
        finally:
            srv.drain_and_stop(drain_s=2.0)

    def test_hung_kernel_is_bounded_by_the_deadline(self, model_env):
        ds, _, path = model_env
        srv = make_server(path, default_deadline_s=0.2, max_deadline_s=10.0)
        srv.set_fault(ServeFaultSpec("kernel_hang", first=0, times=1,
                                     hang_s=0.5))
        try:
            status, _, body = post_json(srv.port, "/predict",
                                        {"points": ds.points[:3].tolist()})
            assert status == 504
            assert body["error"]["type"] == "deadline_exceeded"
            # a slow dependency is not a crash: the breaker stays closed
            assert srv.breaker.state == BREAKER_CLOSED
            assert srv.stats()["counters"]["deadline_exceeded"] == 1
        finally:
            assert srv.drain_and_stop(drain_s=2.0)


# ---------------------------------------------------------------------------
# overload: bounded queue sheds with 429
# ---------------------------------------------------------------------------

class TestLoadShedding:
    def test_saturated_server_sheds_with_429(self, model_env):
        ds, result, path = model_env
        srv = make_server(path, max_concurrency=1, max_queue=0)
        srv.set_fault(ServeFaultSpec("kernel_hang", first=0, times=1,
                                     hang_s=0.8))
        try:
            batch = {"points": ds.points[:5].tolist()}
            first: Dict[str, Any] = {}

            def occupy() -> None:
                status, _, body = post_json(srv.port, "/predict", batch)
                first.update(status=status, body=body)

            holder = threading.Thread(target=occupy)
            holder.start()
            deadline = time.monotonic() + 5.0
            while srv.admission.inflight == 0:
                assert time.monotonic() < deadline, "request never admitted"
                time.sleep(0.01)
            status, headers, body = post_json(
                srv.port, "/predict", batch,
                headers={"X-Deadline-S": "0.05"})
            assert status == 429
            assert body["error"]["type"] == "overloaded"
            assert headers["Retry-After"] == "1"
            holder.join(timeout=10.0)
            # the admitted request finished normally despite the overload
            assert first["status"] == 200
            assert np.array_equal(np.asarray(first["body"]["labels"]),
                                  result.labels[:5])
            assert srv.stats()["counters"]["shed"] == 1
        finally:
            assert srv.drain_and_stop(drain_s=2.0)


# ---------------------------------------------------------------------------
# graceful drain: in-flight work completes, new work is refused
# ---------------------------------------------------------------------------

class TestGracefulDrain:
    def test_drain_refuses_new_work_and_finishes_in_flight(self, model_env):
        ds, result, path = model_env
        srv = make_server(path, max_concurrency=2)
        srv.set_fault(ServeFaultSpec("kernel_hang", first=0, times=1,
                                     hang_s=0.6))
        try:
            batch = {"points": ds.points[:5].tolist()}
            inflight: Dict[str, Any] = {}

            def slow_request() -> None:
                status, _, body = post_json(srv.port, "/predict", batch)
                inflight.update(status=status, body=body)

            worker = threading.Thread(target=slow_request)
            worker.start()
            deadline = time.monotonic() + 5.0
            while srv.admission.inflight == 0:
                assert time.monotonic() < deadline, "request never admitted"
                time.sleep(0.01)
            srv.initiate_drain()
            status, _, body = post_json(srv.port, "/predict", batch)
            assert status == 503
            assert body["error"]["type"] == "draining"
            drained = srv.drain_and_stop(drain_s=5.0)
            worker.join(timeout=10.0)
            assert drained, "drain must wait for the in-flight request"
            assert inflight["status"] == 200, "in-flight work was dropped"
            assert np.array_equal(np.asarray(inflight["body"]["labels"]),
                                  result.labels[:5])
        finally:
            srv.drain_and_stop(drain_s=1.0)

    def test_drain_budget_expiry_reports_unclean(self, model_env):
        ds, _, path = model_env
        srv = make_server(path)
        srv.set_fault(ServeFaultSpec("kernel_hang", first=0, times=1,
                                     hang_s=1.0))
        try:
            batch = {"points": ds.points[:3].tolist()}
            worker = threading.Thread(
                target=lambda: post_json(srv.port, "/predict", batch))
            worker.start()
            deadline = time.monotonic() + 5.0
            while srv.admission.inflight == 0:
                assert time.monotonic() < deadline
                time.sleep(0.01)
            # a budget far below the hang cannot drain cleanly
            assert srv.drain_and_stop(drain_s=0.05) is False
            worker.join(timeout=10.0)
        finally:
            srv.drain_and_stop(drain_s=2.0)


# ---------------------------------------------------------------------------
# the real signal contract, against a real subprocess
# ---------------------------------------------------------------------------

_CHILD_SCRIPT = """
import sys
from repro.robustness.faults import ServeFaultSpec
from repro.serve import ProclusServer, ServerConfig

server = ProclusServer(
    ServerConfig(port=0, drain_s={drain_s}),
    model_path={model_path!r},
    fault=ServeFaultSpec("kernel_hang", first=0, times=1,
                         hang_s={hang_s}),
)
sys.exit(server.run())
"""


def _spawn_server(tmp_path, model_path: str, *, hang_s: float,
                  drain_s: float) -> Tuple[subprocess.Popen, int]:
    script = tmp_path / "serve_child.py"
    script.write_text(_CHILD_SCRIPT.format(
        model_path=model_path, hang_s=hang_s, drain_s=drain_s))
    import os
    env = dict(os.environ)
    env["PYTHONPATH"] = (os.path.abspath("src") + os.pathsep +
                         env.get("PYTHONPATH", ""))
    proc = subprocess.Popen([sys.executable, str(script)], env=env,
                            stdout=subprocess.PIPE, text=True)
    banner = (proc.stdout.readline() or "").strip()
    assert banner.startswith("listening on "), banner
    return proc, int(banner.rsplit(":", 1)[1].rstrip("/"))


class TestSignalContract:
    def test_sigterm_mid_request_drains_cleanly(self, model_env, tmp_path):
        ds, result, path = model_env
        proc, port = _spawn_server(tmp_path, path, hang_s=0.8, drain_s=10.0)
        try:
            batch = {"points": ds.points[:5].tolist()}
            response: Dict[str, Any] = {}

            def in_flight() -> None:
                status, _, body = post_json(port, "/predict", batch)
                response.update(status=status, body=body)

            worker = threading.Thread(target=in_flight)
            worker.start()
            time.sleep(0.3)  # well inside the 0.8s kernel hang
            proc.send_signal(signal.SIGTERM)
            worker.join(timeout=10.0)
            code = proc.wait(timeout=10.0)
            assert code == 0, f"drain must exit 0, got {code}"
            assert response["status"] == 200, "in-flight request was dropped"
            assert np.array_equal(np.asarray(response["body"]["labels"]),
                                  result.labels[:5])
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=5.0)

    def test_second_signal_hard_exits_130(self, model_env, tmp_path):
        ds, _, path = model_env
        proc, port = _spawn_server(tmp_path, path, hang_s=8.0, drain_s=30.0)
        try:
            batch = {"points": ds.points[:3].tolist()}

            def doomed_request() -> None:
                # the hard exit kills the connection mid-request; any
                # transport error here is the expected outcome
                try:
                    post_json(port, "/predict", batch, timeout=3.0)
                except OSError:
                    pass

            worker = threading.Thread(target=doomed_request, daemon=True)
            worker.start()
            time.sleep(0.3)
            proc.send_signal(signal.SIGTERM)  # starts a very long drain
            time.sleep(0.2)
            proc.send_signal(signal.SIGTERM)  # impatient operator
            code = proc.wait(timeout=5.0)
            assert code == 130
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=5.0)
