"""Property-based tests (hypothesis) for the distance layer.

Invariants checked on arbitrary finite inputs:

* metric axioms (identity, symmetry, triangle inequality) for every
  registered Lp metric and the segmental distance;
* the segmental distance equals the Manhattan distance divided by |D|
  when D is the full dimension set;
* batch kernels agree with the scalar definitions.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.distance import (
    euclidean,
    manhattan,
    segmental_distance,
    segmental_distances_to_point,
)
from repro.distance.lp import LpDistance

FINITE = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False,
                   allow_infinity=False)


def vectors(dim):
    return st.lists(FINITE, min_size=dim, max_size=dim).map(np.array)


@st.composite
def two_vectors(draw, min_dim=1, max_dim=8):
    d = draw(st.integers(min_value=min_dim, max_value=max_dim))
    a = draw(vectors(d))
    b = draw(vectors(d))
    return a, b


@st.composite
def three_vectors(draw, min_dim=1, max_dim=6):
    d = draw(st.integers(min_value=min_dim, max_value=max_dim))
    return tuple(draw(vectors(d)) for _ in range(3))


class TestMetricAxioms:
    @given(two_vectors())
    def test_manhattan_symmetry(self, ab):
        a, b = ab
        assert manhattan(a, b) == pytest.approx(manhattan(b, a))

    @given(vectors(5))
    def test_manhattan_identity(self, a):
        assert manhattan(a, a) == 0.0

    @given(three_vectors())
    @settings(max_examples=60)
    def test_manhattan_triangle(self, abc):
        a, b, c = abc
        assert manhattan(a, c) <= manhattan(a, b) + manhattan(b, c) + 1e-6

    @given(three_vectors())
    @settings(max_examples=60)
    def test_euclidean_triangle(self, abc):
        a, b, c = abc
        assert euclidean(a, c) <= euclidean(a, b) + euclidean(b, c) + 1e-6

    @given(two_vectors(), st.floats(min_value=1.0, max_value=8.0))
    @settings(max_examples=60)
    def test_lp_nonnegative(self, ab, p):
        a, b = ab
        assert LpDistance(p)(a, b) >= 0.0


class TestSegmentalProperties:
    @given(two_vectors(min_dim=2))
    def test_full_dims_is_normalised_manhattan(self, ab):
        a, b = ab
        d = a.shape[0]
        assert segmental_distance(a, b, range(d)) == pytest.approx(
            manhattan(a, b) / d
        )

    @given(two_vectors(min_dim=3))
    def test_subset_independent_of_other_coords(self, ab):
        a, b = ab
        dims = [0, 1]
        b2 = b.copy()
        b2[2] = b2[2] + 100.0
        assert segmental_distance(a, b, dims) == pytest.approx(
            segmental_distance(a, b2, dims)
        )

    @given(three_vectors(min_dim=2))
    @settings(max_examples=60)
    def test_triangle_inequality(self, abc):
        a, b, c = abc
        dims = [0, 1]
        assert segmental_distance(a, c, dims) <= (
            segmental_distance(a, b, dims)
            + segmental_distance(b, c, dims) + 1e-6
        )

    @given(st.integers(min_value=1, max_value=30),
           st.integers(min_value=2, max_value=6),
           st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=40)
    def test_batch_matches_scalar(self, n, d, seed):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(n, d))
        p = rng.normal(size=d)
        dims = list(range(0, d, 2)) or [0]
        batch = segmental_distances_to_point(X, p, dims)
        for i in range(n):
            assert batch[i] == pytest.approx(
                segmental_distance(X[i], p, dims)
            )
