"""Unit tests for the feature-preselection baseline (Figure 1's strawman)."""

import numpy as np
import pytest

from repro.baselines import FeatureSelectionClustering, spread_scores, variance_scores
from repro.data import generate
from repro.exceptions import ParameterError
from repro.metrics import adjusted_rand_index
from repro import proclus


class TestScores:
    def test_variance_identifies_compact_dims(self):
        rng = np.random.default_rng(0)
        X = np.column_stack([
            rng.normal(0, 0.1, 500),   # compact
            rng.uniform(0, 100, 500),  # spread out
        ])
        scores = variance_scores(X)
        assert scores[0] < scores[1]

    def test_spread_scores_robust_to_outliers(self):
        """A lone extreme value shifts the MAD-about-median score by
        O(|outlier|/n) but the variance by O(outlier^2/n): the spread
        score still ranks the compact dimension first where the
        variance score is fooled."""
        rng = np.random.default_rng(1)
        compact_with_outlier = np.append(rng.normal(0, 0.1, 499), 4000.0)
        spread = rng.uniform(0, 100, 500)
        X = np.column_stack([compact_with_outlier, spread])
        assert spread_scores(X)[0] < spread_scores(X)[1]
        assert variance_scores(X)[0] > variance_scores(X)[1]


class TestFeatureSelectionClustering:
    def test_selects_requested_count(self):
        ds = generate(500, 10, 2, seed=1)
        fs = FeatureSelectionClustering(2, 4, seed=1).fit(ds.points)
        assert fs.selected_dims_.shape == (4,)

    def test_n_features_above_d_rejected(self):
        ds = generate(100, 5, 2, seed=1)
        with pytest.raises(ParameterError, match="exceeds"):
            FeatureSelectionClustering(2, 9).fit(ds.points)

    def test_invalid_scorer_name(self):
        with pytest.raises(ParameterError, match="scorer"):
            FeatureSelectionClustering(2, 2, scorer="magic")

    def test_invalid_algorithm(self):
        with pytest.raises(ParameterError, match="algorithm"):
            FeatureSelectionClustering(2, 2, algorithm="dbscan")

    def test_custom_scorer_callable(self):
        ds = generate(300, 6, 2, seed=2)
        fs = FeatureSelectionClustering(
            2, 3, scorer=lambda X: X.var(axis=0), seed=2,
        ).fit(ds.points)
        assert fs.labels_.shape == (300,)

    def test_clarans_backend(self):
        ds = generate(300, 6, 2, seed=3)
        fs = FeatureSelectionClustering(2, 3, algorithm="clarans",
                                        seed=3).fit(ds.points)
        assert fs.labels_.shape == (300,)

    def test_scorer_shape_validated(self):
        ds = generate(100, 5, 2, seed=4)
        with pytest.raises(ParameterError, match="one score per dimension"):
            FeatureSelectionClustering(
                2, 2, scorer=lambda X: np.zeros(3)).fit(ds.points)


class TestMotivatingFailure:
    def test_proclus_beats_global_feature_selection(self):
        """The paper's Figure-1 argument: when clusters correlate in
        *disjoint* subspaces, one global dimension subset cannot serve
        both, while PROCLUS recovers the structure."""
        ds = generate(
            2000, 12, 2, cluster_dims=[[0, 1, 2], [6, 7, 8]],
            outlier_fraction=0.0, seed=33,
        )
        fs = FeatureSelectionClustering(2, 3, seed=33).fit(ds.points)
        fs_ari = adjusted_rand_index(fs.labels_, ds.labels,
                                     include_outliers=True)
        pc = proclus(ds.points, 2, 3, seed=33, handle_outliers=False)
        pc_ari = adjusted_rand_index(pc.labels, ds.labels,
                                     include_outliers=True)
        assert pc_ari > 0.9
        assert pc_ari > fs_ari + 0.2
