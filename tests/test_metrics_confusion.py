"""Unit tests for the confusion matrix (paper section 4.2)."""

import numpy as np
import pytest

from repro.exceptions import DataError
from repro.metrics import confusion_from_memberships, confusion_matrix


class TestConfusionMatrix:
    def test_counts(self):
        found = np.array([0, 0, 1, 1, -1])
        true = np.array([1, 1, 0, 1, -1])
        cm = confusion_matrix(found, true)
        # rows: found 0, found 1, outliers; cols: true 0, true 1, outliers
        assert cm.matrix.tolist() == [
            [0, 2, 0],
            [1, 1, 0],
            [0, 0, 1],
        ]

    def test_total_mass_is_n(self):
        rng = np.random.default_rng(0)
        found = rng.integers(-1, 3, 100)
        true = rng.integers(-1, 4, 100)
        cm = confusion_matrix(found, true)
        assert cm.matrix.sum() == 100

    def test_outlier_row_and_column_always_present(self):
        cm = confusion_matrix(np.array([0, 0]), np.array([0, 0]))
        assert cm.matrix.shape == (2, 2)

    def test_length_mismatch(self):
        with pytest.raises(DataError):
            confusion_matrix(np.array([0]), np.array([0, 1]))

    def test_dominant_input(self):
        found = np.array([0, 0, 0, 1])
        true = np.array([2, 2, 5, 5])
        cm = confusion_matrix(found, true)
        assert cm.dominant_input(0) == 2
        assert cm.dominant_input(1) == 5

    def test_dominance_fraction(self):
        found = np.array([0, 0, 0, 0])
        true = np.array([1, 1, 1, 2])
        cm = confusion_matrix(found, true)
        assert cm.dominance(0) == pytest.approx(0.75)

    def test_misplaced_fraction(self):
        found = np.array([0, 0, 0, 1, 1, 1])
        true = np.array([0, 0, 1, 1, 1, 0])
        cm = confusion_matrix(found, true)
        # dominant mass 2 + 2 of 6 cluster-to-cluster points
        assert cm.misplaced_fraction() == pytest.approx(2 / 6)

    def test_perfect_clustering_zero_misplaced(self):
        labels = np.array([0, 0, 1, 1, 2])
        cm = confusion_matrix(labels, labels)
        assert cm.misplaced_fraction() == 0.0

    def test_table_rendering(self):
        found = np.array([0, 1, -1])
        true = np.array([0, 1, -1])
        text = confusion_matrix(found, true).to_table()
        assert "Input" in text
        assert "Outliers" in text
        assert "Out." in text


class TestFromMemberships:
    def test_overlapping_clusters_double_count(self):
        true = np.array([0, 0, 1, 1])
        memberships = [np.array([0, 1, 2]), np.array([2, 3])]
        cm = confusion_from_memberships(memberships, true)
        # point 2 (true cluster 1) appears in both rows
        assert cm.matrix[0].tolist() == [2, 1, 0]
        assert cm.matrix[1].tolist() == [0, 2, 0]

    def test_uncovered_points_in_outlier_row(self):
        true = np.array([0, 0, 1])
        memberships = [np.array([0])]
        cm = confusion_from_memberships(memberships, true)
        assert cm.matrix[-1].tolist() == [1, 1, 0]

    def test_n_points_validated(self):
        with pytest.raises(DataError):
            confusion_from_memberships([np.array([0])], np.array([0, 1]),
                                       n_points=5)


class TestDominantInputEdge:
    def test_row_of_pure_outliers_has_no_dominant(self):
        found = np.array([0, 0])
        true = np.array([-1, -1])
        cm = confusion_matrix(found, true)
        assert cm.dominant_input(0) is None

    def test_dominance_zero_for_empty_row(self):
        found = np.array([0, 1])
        true = np.array([0, 0])
        cm = confusion_matrix(found, true)
        # both rows populated here; construct an all-outlier row instead
        found2 = np.array([0, 1, 1])
        true2 = np.array([0, -1, -1])
        cm2 = confusion_matrix(found2, true2)
        assert cm2.dominance(1) == 0.0
