"""Unit tests for point assignment (AssignPoints)."""

import numpy as np
import pytest

from repro.core import assign_points
from repro.core.assignment import segmental_distance_matrix
from repro.distance import segmental_distance
from repro.exceptions import ParameterError


class TestSegmentalDistanceMatrix:
    def test_columns_use_each_medoids_dims(self):
        X = np.array([[0.0, 100.0], [100.0, 0.0]])
        medoids = np.array([[0.0, 0.0], [0.0, 0.0]])
        dims = [(0,), (1,)]
        m = segmental_distance_matrix(X, medoids, dims)
        assert m[0, 0] == 0.0      # point 0 vs medoid 0 on dim 0
        assert m[0, 1] == 100.0    # point 0 vs medoid 1 on dim 1
        assert m[1, 0] == 100.0
        assert m[1, 1] == 0.0

    def test_matches_scalar_definition(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(10, 5))
        medoids = rng.normal(size=(3, 5))
        dims = [(0, 1), (2, 3, 4), (1, 4)]
        m = segmental_distance_matrix(X, medoids, dims)
        for i in range(10):
            for j in range(3):
                assert m[i, j] == pytest.approx(
                    segmental_distance(X[i], medoids[j], dims[j])
                )

    def test_dim_set_count_mismatch(self):
        with pytest.raises(ParameterError, match="one dimension set per medoid"):
            segmental_distance_matrix(np.zeros((4, 3)), np.zeros((2, 3)), [(0,)])


class TestAssignPoints:
    def test_assigns_to_closest(self, two_cluster_points):
        X = two_cluster_points
        medoids = X[[5, 45]]
        labels = assign_points(X, medoids, [(0, 1), (2, 3)])
        assert np.all(labels[:40] == 0)
        assert np.all(labels[40:] == 1)

    def test_return_distances(self, two_cluster_points):
        X = two_cluster_points
        labels, dist = assign_points(
            X, X[[5, 45]], [(0, 1), (2, 3)], return_distances=True,
        )
        assert dist.shape == (80, 2)
        assert np.array_equal(labels, np.argmin(dist, axis=1))

    def test_labels_in_range(self, two_cluster_points):
        labels = assign_points(
            two_cluster_points, two_cluster_points[[0, 40, 79]],
            [(0,), (1,), (2, 3)],
        )
        assert set(labels.tolist()) <= {0, 1, 2}

    def test_dimension_choice_drives_assignment(self):
        """The same medoids with different dims flip the assignment."""
        X = np.array([[0.0, 9.0]])
        medoids = np.array([[0.0, 0.0], [5.0, 9.0]])
        by_dim0 = assign_points(X, medoids, [(0,), (0,)])
        by_dim1 = assign_points(X, medoids, [(1,), (1,)])
        assert by_dim0[0] == 0
        assert by_dim1[0] == 1


class TestChunkedAssignment:
    def test_matches_unchunked(self, two_cluster_points):
        from repro.core.assignment import assign_points_chunked
        X = two_cluster_points
        medoids = X[[5, 45]]
        dims = [(0, 1), (2, 3)]
        full = assign_points(X, medoids, dims)
        for chunk in (1, 7, 64, 1000):
            chunked = assign_points_chunked(X, medoids, dims,
                                            chunk_size=chunk)
            assert (full == chunked).all()

    def test_invalid_chunk_size(self, two_cluster_points):
        from repro.core.assignment import assign_points_chunked
        with pytest.raises(ParameterError):
            assign_points_chunked(two_cluster_points,
                                  two_cluster_points[[0]], [(0,)],
                                  chunk_size=0)
