"""Unit tests for the l/k parameter sweeps (paper section 4.3 workflow)."""

import pytest

from repro.core import sweep_k, sweep_l
from repro.core.tuning import dimension_contrast
from repro.data import generate
from repro.exceptions import ParameterError


@pytest.fixture(scope="module")
def workload():
    """3 clusters, each 4-dimensional, in a 12-dim space."""
    return generate(1200, 12, 3, cluster_dim_counts=[4, 4, 4],
                    outlier_fraction=0.03, seed=55)


FAST = dict(max_bad_tries=8, keep_history=False)


class TestSweepL:
    def test_knee_recovers_true_dimensionality(self, workload):
        """The contrast criterion plateaus up to the true l = 4 and
        drops beyond it; the knee rule must land on 4."""
        sweep = sweep_l(workload.points, 3, [2, 4, 8], seed=1, **FAST)
        assert sweep.knee_value() == 4.0

    def test_contrast_cliff_beyond_true_l(self, workload):
        sweep = sweep_l(workload.points, 3, [4, 8], seed=1, **FAST)
        scores = dict(zip(sweep.values, sweep.scores))
        assert scores[4.0] > scores[8.0] + 0.1

    def test_result_bookkeeping(self, workload):
        sweep = sweep_l(workload.points, 3, [2, 4], seed=1, **FAST)
        assert sweep.values == [2.0, 4.0]
        assert len(sweep.results) == 2
        assert sweep.best_result is sweep.results[sweep.best_index]
        assert sweep.best_value in (2.0, 4.0)

    def test_custom_criterion(self, workload):
        sweep = sweep_l(workload.points, 3, [2, 4], seed=1,
                        criterion=lambda X, r: -r.objective, **FAST)
        assert len(sweep.scores) == 2

    def test_empty_values_rejected(self, workload):
        with pytest.raises(ParameterError):
            sweep_l(workload.points, 3, [], seed=1)

    def test_text_report(self, workload):
        sweep = sweep_l(workload.points, 3, [2, 4], seed=1, **FAST)
        text = sweep.to_text()
        assert "l=2" in text
        assert "best" in text

    def test_order_independent_given_seed(self, workload):
        """Each candidate gets its own child stream, so scores do not
        depend on sweep order."""
        a = sweep_l(workload.points, 3, [2, 4], seed=9, **FAST)
        b = sweep_l(workload.points, 3, [2, 4], seed=9, **FAST)
        assert a.scores == b.scores

    def test_knee_tolerance_behaviour(self, workload):
        from repro.core import SweepResult
        sweep = SweepResult(parameter="l", values=[2.0, 4.0, 8.0],
                            scores=[-0.10, -0.12, -0.60], results=[None] * 3)
        assert sweep.best_value == 2.0          # argmax
        assert sweep.knee_value(0.05) == 4.0    # largest on plateau
        assert sweep.knee_value(0.001) == 2.0   # tight tolerance -> argmax

    def test_contrast_score_bounds(self, workload):
        from repro import proclus
        result = proclus(workload.points, 3, 4, seed=2, **FAST)
        score = dimension_contrast(workload.points, result)
        assert -1.0 - 1e-9 <= score <= 0.0


class TestSweepK:
    def test_prefers_true_k(self, workload):
        sweep = sweep_k(workload.points, [2, 3, 6], 4, seed=1, **FAST)
        scores = dict(zip(sweep.values, sweep.scores))
        assert scores[3.0] >= scores[6.0] - 0.05

    def test_empty_values_rejected(self, workload):
        with pytest.raises(ParameterError):
            sweep_k(workload.points, [], 4, seed=1)

    def test_parameter_name(self, workload):
        sweep = sweep_k(workload.points, [2, 3], 4, seed=1, **FAST)
        assert sweep.parameter == "k"
