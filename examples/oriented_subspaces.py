"""Beyond the paper: clusters in arbitrarily oriented subspaces.

PROCLUS restricts each cluster's subspace to coordinate axes — that is
what makes its output interpretable ("this segment is defined by
cooking, gardening, parenting").  But correlations in real data are not
always axis-aligned.  This example rotates the paper's workload so each
cluster lives near a low-dimensional affine subspace that no coordinate
subset describes, then compares PROCLUS with the ORCLUS extension
(Aggarwal & Yu, SIGMOD 2000 — the future-work direction of the PROCLUS
paper).

Run:  python examples/oriented_subspaces.py
"""

from repro import proclus
from repro.data import generate, generate_rotated
from repro.extensions import orclus
from repro.metrics import adjusted_rand_index


def main() -> None:
    print("axis-parallel workload (the paper's setting)")
    axis = generate(2000, 12, 3, cluster_dim_counts=[4, 4, 4],
                    outlier_fraction=0.0, seed=5)
    p = proclus(axis.points, 3, 4, seed=5, restarts=3)
    o = orclus(axis.points, 3, 4, seed=5)
    print(f"  PROCLUS ARI = "
          f"{adjusted_rand_index(p.labels, axis.labels):.3f} "
          f"(and it names the dimensions: "
          f"{ {c: list(d) for c, d in p.dimensions.items()} })")
    print(f"  ORCLUS  ARI = "
          f"{adjusted_rand_index(o.labels, axis.labels):.3f} "
          "(bases are arbitrary vectors — no named dimensions)\n")

    print("the same workload, each cluster rotated about its centre")
    rotated = generate_rotated(2000, 12, 3, cluster_dim_counts=[4, 4, 4],
                               outlier_fraction=0.0, seed=5)
    p = proclus(rotated.points, 3, 4, seed=5)
    o = orclus(rotated.points, 3, 4, seed=5)
    print(f"  PROCLUS ARI = "
          f"{adjusted_rand_index(p.labels, rotated.labels):.3f} "
          "(no coordinate subset is tight anymore)")
    print(f"  ORCLUS  ARI = "
          f"{adjusted_rand_index(o.labels, rotated.labels):.3f} "
          "(eigen-bases follow the rotation)\n")

    print(
        "Take-away: PROCLUS trades generality for interpretability and\n"
        "speed; when correlations leave the coordinate axes, the\n"
        "generalised (oriented) projected clustering of ORCLUS is needed."
    )


if __name__ == "__main__":
    main()
