"""Figure 1's argument, executable: why global feature selection fails.

The paper's introduction shows two patterns in 3-D: one cluster tight in
the x-y plane, another tight in the x-z plane.  "Traditional feature
selection does not work in this case, as each dimension is relevant to
at least one of the clusters", and full-dimensional clustering misses
both since each cluster is spread out along one dimension.

This example builds exactly that configuration (plus noise dimensions),
then compares:

* k-means in the full space,
* global feature selection (keep the most compact dimensions) + k-means,
* PROCLUS.

Run:  python examples/feature_selection_failure.py
"""

import numpy as np

from repro import proclus
from repro.baselines import FeatureSelectionClustering, kmeans
from repro.metrics import adjusted_rand_index


def figure1_dataset(n_per_cluster=1000, n_noise_dims=5, seed=3):
    """Cluster 0 tight in (x, y), cluster 1 tight in (x, z); extra
    dimensions are pure noise.  Both clusters share dimension x with
    *different* centres, like the paper's cross-section figure."""
    rng = np.random.default_rng(seed)
    d = 3 + n_noise_dims

    a = rng.uniform(0, 100, size=(n_per_cluster, d))
    a[:, 0] = rng.normal(30.0, 1.5, n_per_cluster)   # x
    a[:, 1] = rng.normal(70.0, 1.5, n_per_cluster)   # y
    # z left uniform: cluster 0 is spread out along z

    b = rng.uniform(0, 100, size=(n_per_cluster, d))
    b[:, 0] = rng.normal(60.0, 1.5, n_per_cluster)   # x
    b[:, 2] = rng.normal(20.0, 1.5, n_per_cluster)   # z
    # y left uniform: cluster 1 is spread out along y

    X = np.vstack([a, b])
    y = np.repeat([0, 1], n_per_cluster)
    perm = rng.permutation(X.shape[0])
    return X[perm], y[perm]


def main() -> None:
    X, y = figure1_dataset()
    print(f"dataset: {X.shape[0]} points, {X.shape[1]} dimensions")
    print("cluster 0 lives in (x=0, y=1); cluster 1 in (x=0, z=2)\n")

    km = kmeans(X, 2, seed=1)
    km_ari = adjusted_rand_index(km.labels, y, include_outliers=True)
    print(f"k-means, full space:            ARI = {km_ari:.3f}")

    fs = FeatureSelectionClustering(2, 2, seed=1).fit(X)
    fs_ari = adjusted_rand_index(fs.labels_, y, include_outliers=True)
    kept = fs.selected_dims_.tolist()
    print(f"feature selection (kept {kept}): ARI = {fs_ari:.3f}")

    pc = proclus(X, 2, 2, seed=1, handle_outliers=False)
    pc_ari = adjusted_rand_index(pc.labels, y, include_outliers=True)
    print(f"PROCLUS:                        ARI = {pc_ari:.3f}")
    print(f"  recovered dimension sets: "
          f"{ {c: list(d) for c, d in pc.dimensions.items()} }")

    print(
        "\nGlobal feature selection must throw away y or z — each relevant"
        "\nto one cluster — so one pattern is always lost. PROCLUS assigns"
        "\neach cluster its own dimensions and finds both."
    )


if __name__ == "__main__":
    main()
