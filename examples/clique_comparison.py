"""PROCLUS vs CLIQUE on one workload: partition vs dense regions.

Reproduces the substance of the paper's section 4.2 comparison on a
single small workload: PROCLUS returns a partition with per-cluster
dimensions; CLIQUE returns overlapping dense regions in many subspaces,
quantified by the paper's *average overlap* metric.

Run:  python examples/clique_comparison.py
"""

import time

from repro import generate, proclus
from repro.baselines import Clique
from repro.metrics import (
    adjusted_rand_index,
    average_overlap,
    cluster_points_recovered,
    confusion_matrix,
)


def main() -> None:
    dataset = generate(
        4000, 15, 4, cluster_dim_counts=[5, 5, 5, 5],
        outlier_fraction=0.05, seed=70,
    )
    print(f"workload: {dataset}\n")

    # ---- PROCLUS ------------------------------------------------------
    t0 = time.perf_counter()
    pc = proclus(dataset.points, 4, 5, seed=71)
    pc_secs = time.perf_counter() - t0
    print(f"PROCLUS ({pc_secs:.2f}s):")
    print(confusion_matrix(pc.labels, dataset.labels).to_table())
    print(f"ARI = {adjusted_rand_index(pc.labels, dataset.labels):.3f}; "
          f"every point in exactly one cluster (or outlier)\n")

    # ---- CLIQUE -------------------------------------------------------
    t0 = time.perf_counter()
    clique = Clique(xi=10, tau=0.005, max_dimensionality=6).fit(dataset.points)
    cq_secs = time.perf_counter() - t0
    res = clique.result
    print(f"CLIQUE ({cq_secs:.2f}s): {res.summary()}\n")

    top = res.clusters_of_dimensionality(5)
    memberships = [c.point_indices for c in top]
    print(f"restricted to the generated dimensionality (5):")
    print(f"  clusters reported   = {len(top)} (4 were generated)")
    print(f"  average overlap     = {average_overlap(memberships):.2f} "
          "(1.0 would be a partition)")
    print(f"  cluster points kept = "
          f"{100 * cluster_points_recovered(memberships, dataset.labels):.1f}%")

    print(
        "\nCLIQUE finds where the data is dense in every subspace — useful,"
        "\nbut points appear in many regions and a large share of each"
        "\nGaussian cluster falls outside the axis-parallel dense cells."
        "\nWhen a partition is needed, the paper concludes, PROCLUS is the"
        "\nmethod of choice."
    )


if __name__ == "__main__":
    main()
