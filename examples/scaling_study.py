"""A miniature of the paper's Figures 7-9 on your machine.

Runs the three scalability sweeps at reduced scale and prints the
textual 'figures' with slope estimates.  Pass --full for sizes closer
to the paper's (expect minutes).

Run:  python examples/scaling_study.py [--full]
"""

import argparse

from repro.experiments import (
    run_scalability_cluster_dim,
    run_scalability_points,
    run_scalability_space_dim,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="larger sweeps (minutes, closer to the paper)")
    args = parser.parse_args()

    if args.full:
        sizes = (5_000, 10_000, 20_000, 40_000)
        l_dims = (4, 5, 6, 7)
        d_dims = (20, 30, 40, 50)
        n_fig8, n_fig9 = 3000, 10_000
    else:
        sizes = (500, 1000, 2000, 4000)
        l_dims = (3, 4, 5)
        d_dims = (10, 20, 40)
        n_fig8, n_fig9 = 1200, 2000

    print("=" * 64)
    fig7 = run_scalability_points(sizes=sizes, include_clique=True,
                                  clique_max_dim=4, seed=7)
    print(fig7.to_text())
    print(f"\nPROCLUS log-log slope vs N: {fig7.slope('PROCLUS'):.2f} "
          "(1.0 = linear)")
    speedups = fig7.speedup("PROCLUS", "CLIQUE")
    print(f"CLIQUE/PROCLUS speedup per point: "
          f"{', '.join(f'{s:.1f}x' for s in speedups)}")

    print("\n" + "=" * 64)
    fig8 = run_scalability_cluster_dim(dims=l_dims, n_points=n_fig8,
                                       include_clique=True, seed=7)
    print(fig8.to_text())
    print(f"\ngrowth over the sweep — PROCLUS: "
          f"{fig8.series['PROCLUS'][-1] / fig8.series['PROCLUS'][0]:.1f}x, "
          f"CLIQUE: "
          f"{fig8.series['CLIQUE'][-1] / fig8.series['CLIQUE'][0]:.1f}x "
          "(the paper: CLIQUE exponential, PROCLUS flat)")

    print("\n" + "=" * 64)
    fig9 = run_scalability_space_dim(dims=d_dims, n_points=n_fig9, seed=7)
    print(fig9.to_text())
    print(f"\nPROCLUS log-log slope vs d: {fig9.slope('PROCLUS'):.2f} "
          "(1.0 = linear)")


if __name__ == "__main__":
    main()
