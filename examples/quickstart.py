"""Quickstart: generate a projected-clustering workload, run PROCLUS,
and inspect the result.

Run:  python examples/quickstart.py
"""

from repro import Proclus, generate
from repro.metrics import adjusted_rand_index, confusion_matrix


def main() -> None:
    # 1. A synthetic dataset in the style of the paper's section 4.1:
    #    10,000 points in 20 dimensions, five clusters each correlated
    #    in its own 7-dimensional subspace, 5% uniform outliers.
    dataset = generate(
        n_points=10_000,
        n_dims=20,
        n_clusters=5,
        cluster_dim_counts=[7] * 5,
        outlier_fraction=0.05,
        seed=70,
    )
    print(f"workload: {dataset}")
    print(f"true dimension sets: {dataset.cluster_dimensions}\n")

    # 2. Run PROCLUS with the matching parameters: k clusters of an
    #    average of l dimensions each.
    model = Proclus(k=5, l=7, seed=71).fit(dataset.points)
    result = model.result_
    print(result.summary(), "\n")

    # 3. Compare against the ground truth the generator recorded.
    print("confusion matrix (output rows vs input columns):")
    print(confusion_matrix(result.labels, dataset.labels).to_table())
    ari = adjusted_rand_index(result.labels, dataset.labels)
    print(f"\nadjusted Rand index: {ari:.3f}")

    # 4. The per-cluster dimension sets are the paper's headline output:
    #    each recovered cluster names the dimensions it correlates in.
    for cid, dims in sorted(result.dimensions.items()):
        print(f"cluster {cid} lives in dimensions {list(dims)}")


if __name__ == "__main__":
    main()
