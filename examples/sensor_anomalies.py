"""Outlier handling as anomaly detection on sensor telemetry.

PROCLUS's refinement phase labels a point an outlier when it falls
outside *every* medoid's sphere of influence (the smallest segmental
distance from the medoid to another medoid, in the medoid's own
dimensions).  On a fleet of sensors whose operating modes each pin a
few metrics to a tight signature, that outlier set is precisely the
sensors matching no mode — an anomaly detector with per-mode
explanations (which metrics define the mode a sensor failed to match).

Run:  python examples/sensor_anomalies.py
"""

import numpy as np

from repro import Proclus
from repro.data import sensor_fleet_workload
from repro.metrics import confusion_matrix


def main() -> None:
    fleet = sensor_fleet_workload(
        n_sensors=2400, n_outliers=120, n_modes=4, seed=13,
    )
    print(f"telemetry: {fleet.n_points} sensors x {fleet.n_dims} metrics, "
          f"{fleet.n_clusters} operating modes, "
          f"{fleet.n_outliers} true anomalies\n")

    avg_l = np.mean([len(d) for d in fleet.cluster_dimensions.values()])
    l = round(avg_l * fleet.n_clusters) / fleet.n_clusters  # k*l integral
    result = Proclus(k=4, l=l, seed=5, restarts=3).fit(fleet.points).result_

    print(confusion_matrix(result.labels, fleet.labels).to_table())

    flagged = set(result.outlier_indices.tolist())
    true_anomalies = set(np.flatnonzero(fleet.labels == -1).tolist())
    tp = len(flagged & true_anomalies)
    precision = tp / len(flagged) if flagged else 0.0
    recall = tp / len(true_anomalies)
    print(f"\nanomaly detection: flagged {len(flagged)} sensors, "
          f"precision {precision:.2f}, recall {recall:.2f}")

    print("\nmode signatures recovered:")
    for cid, dims in sorted(result.dimensions.items()):
        metrics = [fleet.metadata["feature_names"][j] for j in dims]
        print(f"  mode {cid}: {metrics}")


if __name__ == "__main__":
    main()
