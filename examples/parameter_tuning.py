"""Choosing l (and k) when you don't know them — paper section 4.3.

The paper: "it is easy to simply run the algorithm a few times and try
different values for l" because PROCLUS is fast and barely sensitive to
l in runtime.  This example uses the library's sweep helpers with the
ground-truth-free segmental-silhouette criterion to recover the true
parameters of a hidden workload.

Run:  python examples/parameter_tuning.py
"""

from repro import generate
from repro.core import sweep_k, sweep_l
from repro.metrics import adjusted_rand_index


def main() -> None:
    # hidden structure: 4 clusters, each 5-dimensional
    dataset = generate(
        4000, 16, 4, cluster_dim_counts=[5, 5, 5, 5],
        outlier_fraction=0.05, seed=88,
    )
    print(f"workload: {dataset} (true l = 5, true k = 4)\n")

    # --- sweep l at the true k -----------------------------------------
    # Selection rule: any *subset* of a cluster's true dimensions is
    # tight, so the quality score plateaus for l up to the true value
    # and degrades beyond it.  Take the largest l on the plateau (the
    # knee), not the argmax.
    l_sweep = sweep_l(dataset.points, 4, [2, 3, 5, 8], seed=1,
                      max_bad_tries=15)
    print(l_sweep.to_text())
    picked_l = l_sweep.knee_value()
    print(f"-> picked l = {picked_l:g} (largest value on the plateau)\n")

    # --- sweep k at the picked l ---------------------------------------
    k_sweep = sweep_k(dataset.points, [2, 3, 4, 6],
                      picked_l, seed=2, max_bad_tries=15)
    print(k_sweep.to_text())
    print(f"-> picked k = {int(k_sweep.knee_value())}\n")

    best = k_sweep.knee_result()
    ari = adjusted_rand_index(best.labels, dataset.labels)
    print(f"clustering at the selected parameters: ARI = {ari:.3f}")
    for cid, dims in sorted(best.dimensions.items()):
        print(f"  cluster {cid}: dims {list(dims)}")


if __name__ == "__main__":
    main()
