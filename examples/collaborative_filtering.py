"""Collaborative filtering: the paper's motivating application.

Section 1.2 of the paper singles out collaborative filtering [10] as a
natural use of the Manhattan segmental distance: "customers need to be
partitioned into groups with similar interests for target marketing.
Here one needs to be able to handle a large number of dimensions (for
different products or product categories) with an objective function
representing the average difference of preferences."

This example synthesises a preference matrix — customers x product
categories, ratings 0..10 — where each customer segment only *has*
opinions about its own handful of categories (elsewhere the ratings are
noise), then uses PROCLUS to recover both the segments and the
categories that define them.

Run:  python examples/collaborative_filtering.py
"""

import numpy as np

from repro import Proclus
from repro.metrics import adjusted_rand_index, confusion_matrix

CATEGORIES = [
    "sci-fi", "romance", "cooking", "travel", "sports", "gardening",
    "finance", "parenting", "gaming", "music", "fitness", "history",
    "fashion", "tech", "pets", "art",
]

SEGMENTS = {
    # segment name -> (categories with strong shared taste, base rating)
    "young gamers": (["gaming", "tech", "sci-fi", "music"], 9.0),
    "home makers": (["cooking", "gardening", "parenting", "pets"], 8.0),
    "active retirees": (["travel", "history", "art", "finance"], 7.5),
    "athletes": (["sports", "fitness", "music"], 8.5),
}


def synthesize_preferences(n_per_segment=800, n_outliers=160, seed=7):
    """Ratings: tight around the segment's taste on its categories,
    uniform noise everywhere else (people rate things they don't care
    about arbitrarily)."""
    rng = np.random.default_rng(seed)
    d = len(CATEGORIES)
    blocks, labels = [], []
    for seg_id, (name, (cats, base)) in enumerate(SEGMENTS.items()):
        block = rng.uniform(0, 10, size=(n_per_segment, d))
        for c in cats:
            j = CATEGORIES.index(c)
            block[:, j] = np.clip(
                rng.normal(base, 0.6, size=n_per_segment), 0, 10,
            )
        blocks.append(block)
        labels.append(np.full(n_per_segment, seg_id))
    blocks.append(rng.uniform(0, 10, size=(n_outliers, d)))
    labels.append(np.full(n_outliers, -1))
    X = np.vstack(blocks)
    y = np.concatenate(labels)
    perm = rng.permutation(X.shape[0])
    return X[perm], y[perm]


def main() -> None:
    X, true_segments = synthesize_preferences()
    print(f"preference matrix: {X.shape[0]} customers x "
          f"{X.shape[1]} product categories\n")

    # average segment cares about ~3.75 categories; k*l must be integral
    model = Proclus(k=4, l=3.75, seed=11).fit(X)
    result = model.result_

    print(confusion_matrix(result.labels, true_segments).to_table())
    ari = adjusted_rand_index(result.labels, true_segments)
    print(f"\nadjusted Rand index vs true segments: {ari:.3f}\n")

    segment_names = list(SEGMENTS)
    cm = confusion_matrix(result.labels, true_segments)
    for cid in range(result.k):
        cats = [CATEGORIES[j] for j in result.dimensions[cid]]
        dominant = cm.dominant_input(cid)
        name = segment_names[dominant] if dominant is not None else "(mixed)"
        print(f"found segment {cid} (~ {name!r}): "
              f"defined by {cats}")
    print(f"\n{result.n_outliers} customers have no clear segment "
          "(target them generically)")


if __name__ == "__main__":
    main()
